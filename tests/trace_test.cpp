// Tests for the synthetic workload generators.
#include <gtest/gtest.h>

#include <set>

#include "trace/source.hpp"
#include "trace/workload.hpp"

namespace eccsim::trace {
namespace {

TEST(Workloads, SixteenPaperWorkloads) {
  const auto& all = paper_workloads();
  EXPECT_EQ(all.size(), 16u);
  unsigned bin1 = 0, bin2 = 0, mt = 0;
  std::set<std::string> names;
  for (const auto& w : all) {
    EXPECT_TRUE(names.insert(w.name).second) << "duplicate " << w.name;
    if (w.bin == 1) ++bin1;
    if (w.bin == 2) ++bin2;
    if (w.multithreaded) ++mt;
  }
  EXPECT_EQ(bin1, 8u);
  EXPECT_EQ(bin2, 8u);
  EXPECT_EQ(mt, 4u);  // the four PARSEC workloads
}

TEST(Workloads, LookupByName) {
  EXPECT_EQ(workload_by_name("lbm").bin, 2);
  EXPECT_EQ(workload_by_name("sjeng").bin, 1);
  EXPECT_THROW(workload_by_name("doom"), std::out_of_range);
}

TEST(Workloads, Bin2HasHigherAccessRates) {
  // Fig. 9: Bin2 workloads consume more bandwidth.  Every Bin2 APKI must
  // exceed every Bin1 APKI in our calibration.
  double min_bin2 = 1e9, max_bin1 = 0;
  for (const auto& w : paper_workloads()) {
    if (w.bin == 2) min_bin2 = std::min(min_bin2, w.apki);
    else max_bin1 = std::max(max_bin1, w.apki);
  }
  EXPECT_GT(min_bin2, max_bin1);
}

TEST(CoreGenerator, GapMatchesApki) {
  const auto& w = workload_by_name("lbm");
  CoreGenerator gen(w, 0, 8, 42);
  double gap_sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) gap_sum += gen.next().gap;
  const double mean_gap = gap_sum / n;
  // mean gap ~ 1000/APKI (the +1 memory instruction is noise at this size).
  EXPECT_NEAR(mean_gap, 1000.0 / w.apki, 1000.0 / w.apki * 0.1);
}

TEST(CoreGenerator, WriteFractionMatches) {
  const auto& w = workload_by_name("milc");
  CoreGenerator gen(w, 0, 8, 42);
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) writes += gen.next().is_write;
  EXPECT_NEAR(static_cast<double>(writes) / n, w.write_fraction, 0.02);
}

TEST(CoreGenerator, FootprintRespected) {
  const auto& w = workload_by_name("hmmer");
  const std::uint64_t lines = w.footprint_bytes / 64;
  CoreGenerator gen(w, 2, 8, 42);  // core 2: private region [2*lines, 3*lines)
  for (int i = 0; i < 20000; ++i) {
    const MemOp op = gen.next();
    EXPECT_GE(op.line, 2 * lines);
    EXPECT_LT(op.line, 3 * lines);
  }
}

TEST(CoreGenerator, MultithreadedSharesFootprint) {
  const auto& w = workload_by_name("canneal");
  ASSERT_TRUE(w.multithreaded);
  const std::uint64_t lines = w.footprint_bytes / 64;
  for (unsigned core : {0u, 3u, 7u}) {
    CoreGenerator gen(w, core, 8, 42);
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(gen.next().line, lines);
    }
  }
}

TEST(CoreGenerator, StreamingWorkloadIsSequential) {
  const auto& w = workload_by_name("libquantum");  // stream_fraction 0.98
  CoreGenerator gen(w, 0, 8, 42);
  std::uint64_t sequential = 0, total = 0;
  std::uint64_t prev = gen.next().line;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t cur = gen.next().line;
    if (cur == prev + 1) ++sequential;
    prev = cur;
    ++total;
  }
  EXPECT_GT(static_cast<double>(sequential) / total, 0.9);
}

TEST(CoreGenerator, DeterministicPerSeed) {
  const auto& w = workload_by_name("mcf");
  CoreGenerator a(w, 1, 8, 7), b(w, 1, 8, 7), c(w, 1, 8, 8);
  bool any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const MemOp oa = a.next(), ob = b.next(), oc = c.next();
    EXPECT_EQ(oa.line, ob.line);
    EXPECT_EQ(oa.is_write, ob.is_write);
    EXPECT_EQ(oa.gap, ob.gap);
    if (oa.line != oc.line) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds must differ";
}

TEST(CoreGenerator, CoresHaveDistinctStreams) {
  const auto& w = workload_by_name("canneal");
  CoreGenerator a(w, 0, 8, 7), b(w, 1, 8, 7);
  bool any_diff = false;
  for (int i = 0; i < 200; ++i) {
    if (a.next().line != b.next().line) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workloads, IndexIsPositionInPaperList) {
  const auto& all = paper_workloads();
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(workload_index(all[i].name), i);
  }
  EXPECT_THROW(workload_index("doom"), std::out_of_range);
}

TEST(Workloads, PaperSweepSeedsAreStableAndDistinct) {
  // These seeds are baked into recorded traces (tracetool's default) and
  // into the committed sweep CSVs; pin workload 0's value so an accidental
  // change to the derivation cannot slip through.
  EXPECT_EQ(paper_sweep_seed(0), paper_sweep_seed("mcf"));
  EXPECT_EQ(paper_sweep_seed(0), 16834447057089888969ULL);
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < paper_workloads().size(); ++i) {
    EXPECT_TRUE(seen.insert(paper_sweep_seed(i)).second);
  }
}

TEST(SyntheticSource, MatchesPerCoreGenerators) {
  const auto& w = workload_by_name("GemsFDTD");
  SyntheticSource source(w, 4, 123);
  EXPECT_EQ(source.cores(), 4u);
  EXPECT_EQ(source.workload().name, "GemsFDTD");
  std::vector<CoreGenerator> gens;
  for (unsigned c = 0; c < 4; ++c) gens.emplace_back(w, c, 4, 123);
  // Uneven pull order: the source must keep per-core streams independent.
  for (int i = 0; i < 4000; ++i) {
    const unsigned c = static_cast<unsigned>((i * 7) % 4);
    const MemOp a = source.next(c);
    const MemOp b = gens[c].next();
    ASSERT_EQ(a.line, b.line);
    ASSERT_EQ(a.gap, b.gap);
    ASSERT_EQ(a.is_write, b.is_write);
  }
}

}  // namespace
}  // namespace eccsim::trace
