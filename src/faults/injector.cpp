#include "faults/injector.hpp"

#include <algorithm>

namespace eccsim::faults {

namespace {

/// Deterministic per-(event, line) corruption byte; never zero.
std::uint8_t corruption_byte(const FaultEvent& e, std::uint64_t line) {
  std::uint64_t h = line * 0x9e3779b97f4a7c15ULL +
                    (static_cast<std::uint64_t>(e.channel) << 32) +
                    (static_cast<std::uint64_t>(e.rank) << 16) + e.chip +
                    static_cast<std::uint64_t>(e.type);
  h ^= h >> 29;
  const auto b = static_cast<std::uint8_t>(h);
  return b == 0 ? 0x5A : b;
}

}  // namespace

std::vector<std::uint64_t> FaultInjector::affected_lines(
    const FaultEvent& e) const {
  const dram::MemGeometry& geom = mgr_.map().geometry();
  const dram::AddressMap& map = mgr_.map();
  std::vector<std::uint64_t> lines;

  // Helper: every line of one (channel, rank, bank), optionally filtered
  // by row or column (line slot within the 4KB row).
  auto collect_bank = [&](std::uint32_t bank, std::int64_t only_row,
                          std::int64_t only_col, std::uint32_t rank) {
    for (std::uint64_t row = 0; row < geom.rows_per_bank; ++row) {
      if (only_row >= 0 && row != static_cast<std::uint64_t>(only_row)) {
        continue;
      }
      for (std::uint32_t col = 0; col < geom.lines_per_row(); ++col) {
        if (only_col >= 0 && col != static_cast<std::uint32_t>(only_col)) {
          continue;
        }
        dram::DramAddress a;
        a.channel = e.channel;
        a.rank = rank;
        a.bank = bank;
        a.row = row;
        a.col = col;
        lines.push_back(map.encode(a));
      }
    }
  };

  // Deterministic anchor for small-scope faults, derived from the event.
  const std::uint64_t anchor =
      corruption_byte(e, 1) * 2654435761ULL;
  const auto anchor_bank =
      static_cast<std::uint32_t>(anchor % geom.banks_per_rank);
  const auto anchor_row = static_cast<std::int64_t>(
      (anchor >> 8) % geom.rows_per_bank);
  const auto anchor_col = static_cast<std::int64_t>(
      (anchor >> 24) % geom.lines_per_row());

  switch (e.type) {
    case FaultType::kBit:
    case FaultType::kWord:
      collect_bank(anchor_bank, anchor_row, anchor_col, e.rank);
      break;
    case FaultType::kRow:
      collect_bank(anchor_bank, anchor_row, -1, e.rank);
      break;
    case FaultType::kColumn:
      collect_bank(anchor_bank, -1, anchor_col, e.rank);
      break;
    case FaultType::kBank:
      collect_bank(anchor_bank, -1, -1, e.rank);
      break;
    case FaultType::kMultiBank:
      for (std::uint32_t b = 0; b < geom.banks_per_rank / 2; ++b) {
        collect_bank((anchor_bank + b) % geom.banks_per_rank, -1, -1,
                     e.rank);
      }
      break;
    case FaultType::kMultiRank:
      for (std::uint32_t r = 0; r < geom.ranks_per_channel; ++r) {
        for (std::uint32_t b = 0; b < geom.banks_per_rank; ++b) {
          collect_bank(b, -1, -1, r);
        }
      }
      break;
    case FaultType::kCount_:
      break;
  }

  if (cap_ != 0 && lines.size() > cap_) {
    // Deterministic thinning: keep every k-th line so the sample spans the
    // whole affected region.
    const std::uint64_t stride = lines.size() / cap_ + 1;
    std::vector<std::uint64_t> thinned;
    thinned.reserve(cap_);
    for (std::uint64_t i = 0; i < lines.size(); i += stride) {
      thinned.push_back(lines[i]);
    }
    lines = std::move(thinned);
  }
  return lines;
}

InjectionResult FaultInjector::inject(const FaultEvent& event) {
  InjectionResult result;
  result.type = event.type;
  // The faulted chip owns a fixed share of every affected line; corrupt
  // only data chips (ECC-chip faults corrupt detection bits, which the
  // read path re-derives on correction -- modeled as a data-chip fault of
  // the neighboring position for simplicity).
  for (std::uint64_t line : affected_lines(event)) {
    mgr_.corrupt_chip_share(line, event.chip % 4,
                            corruption_byte(event, line));
    ++result.lines_corrupted;
  }
  return result;
}

std::vector<InjectionResult> FaultInjector::inject_history(
    const std::vector<FaultEvent>& events, bool scrub_between) {
  std::vector<InjectionResult> results;
  results.reserve(events.size());
  for (const FaultEvent& e : events) {
    results.push_back(inject(e));
    if (scrub_between) mgr_.scrub();
  }
  return results;
}

}  // namespace eccsim::faults
