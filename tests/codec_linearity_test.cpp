// Linearity of every scheme's correction bits -- the algebraic property
// the whole ECC Parity mechanism rests on (Sec. III-A):
//
//   corr(a XOR b) == corr(a) XOR corr(b)
//
// implies corr(zero) == 0, that the cross-channel parity of correction
// bits behaves like RAID-5 parity, and that Eq. 1's incremental update
// (P ^= corr(old) ^ corr(new)) keeps the stored parity equal to the XOR
// of the members' correction bits.  Every codec that ECC Parity can wrap
// must satisfy it; these parameterized tests pin it down per scheme.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "ecc/lotecc5_rs16.hpp"

namespace eccsim::ecc {
namespace {

enum class CodecKind {
  kChipkill36,
  kLotEcc5,
  kLotEcc9,
  kRaim,
  kRaimParity,
  kLotEcc5Rs16,
};

std::unique_ptr<LineCodec> build(CodecKind kind) {
  switch (kind) {
    case CodecKind::kChipkill36: return make_codec(SchemeId::kChipkill36);
    case CodecKind::kLotEcc5: return make_codec(SchemeId::kLotEcc5);
    case CodecKind::kLotEcc9: return make_codec(SchemeId::kLotEcc9);
    case CodecKind::kRaim: return make_codec(SchemeId::kRaim);
    case CodecKind::kRaimParity: return make_codec(SchemeId::kRaimParity);
    case CodecKind::kLotEcc5Rs16: return make_lotecc5_rs16_codec();
  }
  return nullptr;
}

std::string kind_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kChipkill36: return "chipkill36";
    case CodecKind::kLotEcc5: return "lotecc5";
    case CodecKind::kLotEcc9: return "lotecc9";
    case CodecKind::kRaim: return "raim";
    case CodecKind::kRaimParity: return "raim_parity";
    case CodecKind::kLotEcc5Rs16: return "lotecc5_rs16";
  }
  return "?";
}

class CodecLinearityTest : public ::testing::TestWithParam<CodecKind> {};

TEST_P(CodecLinearityTest, CorrectionBitsOfZeroLineAreZero) {
  const auto codec = build(GetParam());
  const std::vector<std::uint8_t> zero(codec->data_bytes(), 0);
  const auto corr = codec->correction_bits(zero);
  for (auto b : corr) EXPECT_EQ(b, 0);
}

TEST_P(CodecLinearityTest, CorrectionBitsAreLinear) {
  const auto codec = build(GetParam());
  Rng rng(900);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> a(codec->data_bytes());
    std::vector<std::uint8_t> b(codec->data_bytes());
    for (auto& v : a) v = static_cast<std::uint8_t>(rng.next_below(256));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_below(256));
    std::vector<std::uint8_t> ab(codec->data_bytes());
    for (unsigned i = 0; i < codec->data_bytes(); ++i) {
      ab[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
    }
    const auto ca = codec->correction_bits(a);
    const auto cb = codec->correction_bits(b);
    const auto cab = codec->correction_bits(ab);
    for (unsigned i = 0; i < codec->correction_bytes(); ++i) {
      ASSERT_EQ(cab[i], ca[i] ^ cb[i])
          << kind_name(GetParam()) << " byte " << i;
    }
  }
}

TEST_P(CodecLinearityTest, Eq1IncrementalUpdateMatchesRecompute) {
  // Simulate Eq. 1 over a 3-member parity group: incremental updates must
  // track the from-scratch XOR exactly.
  const auto codec = build(GetParam());
  Rng rng(901);
  const unsigned members = 3;
  std::vector<std::vector<std::uint8_t>> lines(
      members, std::vector<std::uint8_t>(codec->data_bytes(), 0));
  std::vector<std::uint8_t> parity(codec->correction_bytes(), 0);
  for (int step = 0; step < 60; ++step) {
    const unsigned m = static_cast<unsigned>(rng.next_below(members));
    std::vector<std::uint8_t> next(codec->data_bytes());
    for (auto& v : next) v = static_cast<std::uint8_t>(rng.next_below(256));
    const auto old_corr = codec->correction_bits(lines[m]);
    const auto new_corr = codec->correction_bits(next);
    for (unsigned i = 0; i < parity.size(); ++i) {
      parity[i] ^= old_corr[i] ^ new_corr[i];  // Eq. 1
    }
    lines[m] = std::move(next);
    // Recompute from scratch and compare.
    std::vector<std::uint8_t> expect(codec->correction_bytes(), 0);
    for (const auto& line : lines) {
      const auto c = codec->correction_bits(line);
      for (unsigned i = 0; i < expect.size(); ++i) expect[i] ^= c[i];
    }
    ASSERT_EQ(parity, expect) << kind_name(GetParam()) << " step " << step;
  }
}

TEST_P(CodecLinearityTest, ReconstructionByCancellation) {
  // The Sec. III-A reconstruction: XOR the parity with the other members'
  // correction bits and you get the missing member's correction bits.
  const auto codec = build(GetParam());
  Rng rng(902);
  const unsigned members = 5;
  std::vector<std::vector<std::uint8_t>> lines;
  std::vector<std::uint8_t> parity(codec->correction_bytes(), 0);
  for (unsigned m = 0; m < members; ++m) {
    std::vector<std::uint8_t> line(codec->data_bytes());
    for (auto& v : line) v = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = codec->correction_bits(line);
    for (unsigned i = 0; i < parity.size(); ++i) parity[i] ^= c[i];
    lines.push_back(std::move(line));
  }
  for (unsigned missing = 0; missing < members; ++missing) {
    std::vector<std::uint8_t> rebuilt = parity;
    for (unsigned m = 0; m < members; ++m) {
      if (m == missing) continue;
      const auto c = codec->correction_bits(lines[m]);
      for (unsigned i = 0; i < rebuilt.size(); ++i) rebuilt[i] ^= c[i];
    }
    EXPECT_EQ(rebuilt, codec->correction_bits(lines[missing]))
        << kind_name(GetParam()) << " member " << missing;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCorrectionCodecs, CodecLinearityTest,
    ::testing::Values(CodecKind::kChipkill36, CodecKind::kLotEcc5,
                      CodecKind::kLotEcc9, CodecKind::kRaim,
                      CodecKind::kRaimParity, CodecKind::kLotEcc5Rs16),
    [](const ::testing::TestParamInfo<CodecKind>& info) {
      return kind_name(info.param);
    });

}  // namespace
}  // namespace eccsim::ecc
