// ecclint's driver: runs the rule passes over a set of sources, applies
// `// ecclint:allow(EL###)` suppressions, and implements the baseline
// ratchet (docs/STATIC_ANALYSIS.md).
//
// Everything here operates on in-memory sources so tests can feed inline
// fixtures; main.cpp is the only place that touches the filesystem.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace eccsim::ecclint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     ///< "EL###"
  std::string message;

  /// The machine-readable output format: `file:line: [EL###] message`.
  std::string str() const;
  /// The baseline identity: `file [EL###] message` -- no line number, so
  /// unrelated edits above a grandfathered finding do not churn the
  /// baseline.
  std::string key() const;
};

struct SourceFile {
  std::string path;  ///< repo-relative, '/'-separated
  std::string content;
};

struct Config {
  /// Contents of tools/ecclint/layers.txt; empty disables the layering
  /// family (EL101/EL102).
  std::string layers_text;
  /// Reported as the file of layers.txt's own findings (bad syntax,
  /// declared-DAG cycles).
  std::string layers_path = "tools/ecclint/layers.txt";
  /// Contents of docs/OBSERVABILITY.md; every schema id used in code must
  /// appear here (EL202).  Empty disables only EL202.
  std::string schema_doc;
  std::string schema_doc_path = "docs/OBSERVABILITY.md";
  /// Paths (prefix match) where EL002's wall-clock/entropy ban does not
  /// apply: the observability layer timestamps runs by design, and
  /// bench_common times sweeps for the profile report.
  std::vector<std::string> clock_allow_prefixes = {"src/obs/",
                                                   "bench/bench_common"};
};

/// Lexes every file, runs all rule passes, applies suppressions, and
/// returns findings sorted by (file, line, rule, message).
std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                             const Config& cfg);

/// The ratchet: `fresh` findings are not covered by the baseline and must
/// fail CI; `stale` baseline entries no longer fire and must be deleted
/// (a fixed finding may never stay grandfathered).
struct BaselineOutcome {
  std::vector<Finding> fresh;
  std::vector<std::string> stale;
};

/// Baseline format: one Finding::key() per line; '#' comments (used for
/// the mandatory written justification) and blank lines are ignored.
BaselineOutcome apply_baseline(const std::vector<Finding>& findings,
                               const std::string& baseline_text);

/// Renders findings as a baseline file body (for --update-baseline).
std::string render_baseline(const std::vector<Finding>& findings);

/// One catalog entry per rule; --list-rules prints these.
struct RuleInfo {
  const char* id;
  const char* summary;
};
const std::vector<RuleInfo>& rule_catalog();

// --- rule passes (internal; exposed for focused unit tests) ---------------

void check_determinism(const LexedFile& file, const Config& cfg,
                       std::vector<Finding>& out);
void check_layering(const std::vector<LexedFile>& files, const Config& cfg,
                    std::vector<Finding>& out);
void check_schema(const std::vector<LexedFile>& files, const Config& cfg,
                  std::vector<Finding>& out);

}  // namespace eccsim::ecclint
