// Kernel-equivalence suite for the bulk GF(2^8) region primitives.
//
// The contract under test is absolute: every kernel (slice8, simd) must
// produce byte-for-byte the scalar oracle's output for every coefficient,
// every length 0..257, and every source/destination alignment -- because
// the RS codecs dispatch on CPU features at runtime, any divergence would
// make simulation results depend on the host.  The dispatch surface
// (ECCSIM_KERNEL parsing, unavailable-kernel rejection) is covered with
// the same exit-code-2 convention as the bench flag parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/rng.hpp"
#include "gf/gf.hpp"
#include "gf/kernels.hpp"
#include "gf/rs.hpp"

namespace eccsim::gf {
namespace {

using MulFn = void (*)(std::uint8_t, const std::uint8_t*, std::uint8_t*,
                       std::size_t);
using XorFn = void (*)(const std::uint8_t*, std::uint8_t*, std::size_t);

constexpr std::size_t kMaxLen = 257;   // beyond every vector width multiple
constexpr std::size_t kMaxAlign = 16;  // every offset within a SIMD lane

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> v(len);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
  return v;
}

/// Runs `fn` against the scalar reference over all lengths and alignments.
/// Buffers are over-allocated and offset so loads/stores land on every
/// byte alignment; guard bytes detect out-of-range writes.
void check_mul_matches_scalar(MulFn fn, MulFn ref, bool acc,
                              const char* name) {
  Rng rng(0x5eed + static_cast<unsigned>(acc));
  for (std::size_t align = 0; align < kMaxAlign; ++align) {
    for (std::size_t len = 0; len <= kMaxLen;
         len += (len < 40 ? 1 : 7)) {  // dense near 0, sampled beyond
      const std::uint8_t c =
          static_cast<std::uint8_t>(rng.next_below(256));
      const auto src_buf = random_bytes(rng, align + len);
      const auto dst_init = random_bytes(rng, align + len + 1);
      std::vector<std::uint8_t> got = dst_init;
      std::vector<std::uint8_t> want = dst_init;
      if (!acc) {
        // Non-accumulating: dst contents must be fully overwritten.
        std::fill(got.begin(), got.end(), 0xAA);
        std::fill(want.begin(), want.end(), 0xAA);
      }
      fn(c, src_buf.data() + align, got.data() + align, len);
      ref(c, src_buf.data() + align, want.data() + align, len);
      ASSERT_EQ(got, want) << name << " c=" << unsigned(c)
                           << " len=" << len << " align=" << align;
    }
  }
  // In-place aliasing (src == dst) is part of the contract.
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 64u, 255u}) {
    const std::uint8_t c = static_cast<std::uint8_t>(rng.next_below(256));
    auto got = random_bytes(rng, len);
    auto want = got;
    fn(c, got.data(), got.data(), len);
    ref(c, want.data(), want.data(), len);
    ASSERT_EQ(got, want) << name << " in-place len=" << len;
  }
}

TEST(GfKernels, Slice8MulRegionMatchesScalar) {
  check_mul_matches_scalar(gf_mul_region_slice8, gf_mul_region_scalar,
                           false, "slice8 mul");
}

TEST(GfKernels, Slice8MulRegionAccMatchesScalar) {
  check_mul_matches_scalar(gf_mul_region_acc_slice8,
                           gf_mul_region_acc_scalar, true, "slice8 acc");
}

TEST(GfKernels, SimdMulRegionMatchesScalar) {
  if (!kernel_available(Kernel::kSimd)) GTEST_SKIP() << "no SSSE3";
  check_mul_matches_scalar(gf_mul_region_simd, gf_mul_region_scalar, false,
                           "simd mul");
}

TEST(GfKernels, SimdMulRegionAccMatchesScalar) {
  if (!kernel_available(Kernel::kSimd)) GTEST_SKIP() << "no SSSE3";
  check_mul_matches_scalar(gf_mul_region_acc_simd, gf_mul_region_acc_scalar,
                           true, "simd acc");
}

TEST(GfKernels, XorRegionMatchesScalarAllKernels) {
  const XorFn fns[] = {gf_xor_region_slice8, gf_xor_region_simd};
  Rng rng(0xA5A5);
  for (XorFn fn : fns) {
    for (std::size_t align = 0; align < kMaxAlign; ++align) {
      for (std::size_t len = 0; len <= kMaxLen; len += 3) {
        const auto src = random_bytes(rng, align + len);
        const auto init = random_bytes(rng, align + len);
        auto got = init;
        auto want = init;
        fn(src.data() + align, got.data() + align, len);
        gf_xor_region_scalar(src.data() + align, want.data() + align, len);
        ASSERT_EQ(got, want) << "len=" << len << " align=" << align;
      }
    }
  }
}

TEST(GfKernels, AffineCombineMatchesScalarAllKernels) {
  using CombineFn = void (*)(const std::uint8_t*, std::size_t,
                             const std::uint8_t*, std::size_t, std::uint8_t*,
                             std::size_t);
  std::vector<CombineFn> fns = {gf_affine_combine_slice8};
  if (kernel_available(Kernel::kSimd)) fns.push_back(gf_affine_combine_simd);
  Rng rng(0xC0DE);
  for (CombineFn fn : fns) {
    for (std::size_t n_rows : {0u, 1u, 2u, 5u, 32u, 255u}) {
      for (std::size_t len : {0u, 1u, 2u, 4u, 16u, 31u, 32u, 257u}) {
        const std::size_t stride = len + rng.next_below(3);  // padded rows ok
        const auto rows = random_bytes(rng, n_rows * stride + 1);
        const auto coeffs = random_bytes(rng, n_rows);
        std::vector<std::uint8_t> got(len + 1, 0xEE);
        std::vector<std::uint8_t> want(len + 1, 0xEE);
        fn(coeffs.data(), n_rows, rows.data(), stride, got.data(), len);
        gf_affine_combine_scalar(coeffs.data(), n_rows, rows.data(), stride,
                                 want.data(), len);
        ASSERT_EQ(got, want) << "rows=" << n_rows << " len=" << len;
      }
    }
  }
}

TEST(GfKernels, MatApplyMatchesScalarAllShapes) {
  // The matrix-apply strategies (contribution tables for width <= 8,
  // per-row combines beyond) must agree with the scalar double loop for
  // every shape class, including the codec shapes (width 2 and 4).
  Rng rng(0x3A7);
  std::vector<Kernel> kernels = {Kernel::kSlice8};
  if (kernel_available(Kernel::kSimd)) kernels.push_back(Kernel::kSimd);
  for (std::size_t n_rows : {0u, 1u, 2u, 32u, 36u, 255u}) {
    for (std::size_t width : {1u, 2u, 4u, 8u, 9u, 32u}) {
      const auto rows = random_bytes(rng, n_rows * width);
      const GfMatApply m(rows.data(), n_rows, width);
      for (int trial = 0; trial < 20; ++trial) {
        const auto vec = random_bytes(rng, n_rows);
        std::vector<std::uint8_t> want(width, 0xEE);
        m.apply_with(Kernel::kScalar, vec.data(), n_rows, want.data());
        for (Kernel k : kernels) {
          std::vector<std::uint8_t> got(width, 0x11);
          m.apply_with(k, vec.data(), n_rows, got.data());
          ASSERT_EQ(got, want) << kernel_name(k) << " rows=" << n_rows
                               << " width=" << width;
        }
      }
    }
  }
}

TEST(GfKernels, ScalarOracleIsFieldMul) {
  // The oracle itself must be Field<8>::mul exactly -- everything else is
  // transitively pinned to it.
  std::uint8_t src[256], dst[256];
  for (unsigned x = 0; x < 256; ++x) src[x] = static_cast<std::uint8_t>(x);
  for (unsigned c = 0; c < 256; ++c) {
    gf_mul_region_scalar(static_cast<std::uint8_t>(c), src, dst, 256);
    for (unsigned x = 0; x < 256; ++x) {
      ASSERT_EQ(dst[x], GF256::mul(static_cast<std::uint8_t>(c),
                                   static_cast<std::uint8_t>(x)));
    }
  }
}

TEST(GfKernels, RsEncodeIdenticalUnderEveryKernel) {
  // End-to-end: the codec the simulator actually runs must emit the same
  // codeword whichever kernel is active.
  Rng rng(0xE2E);
  Rs8 rs(36, 32);
  std::vector<Kernel> kernels = {Kernel::kScalar, Kernel::kSlice8};
  if (kernel_available(Kernel::kSimd)) kernels.push_back(Kernel::kSimd);
  for (int trial = 0; trial < 200; ++trial) {
    const auto data = random_bytes(rng, 32);
    std::vector<std::vector<std::uint8_t>> codewords;
    for (Kernel k : kernels) {
      const Kernel prev = set_kernel_override(k);
      codewords.push_back(rs.encode(data));
      set_kernel_override(prev);
    }
    for (std::size_t i = 1; i < codewords.size(); ++i) {
      ASSERT_EQ(codewords[i], codewords[0])
          << "kernel " << kernel_name(kernels[i]) << " trial " << trial;
    }
  }
}

TEST(GfKernels, RsDecodeIdenticalUnderEveryKernel) {
  Rng rng(0xDEC);
  Rs8 rs(36, 32);
  std::vector<Kernel> kernels = {Kernel::kScalar, Kernel::kSlice8};
  if (kernel_available(Kernel::kSimd)) kernels.push_back(Kernel::kSimd);
  for (int trial = 0; trial < 100; ++trial) {
    const auto data = random_bytes(rng, 32);
    const auto cw = rs.encode(data);
    auto corrupted = cw;
    const unsigned p0 = static_cast<unsigned>(rng.next_below(36));
    corrupted[p0] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    for (Kernel k : kernels) {
      const Kernel prev = set_kernel_override(k);
      auto attempt = corrupted;
      const RsDecodeResult r = rs.decode(attempt);
      set_kernel_override(prev);
      ASSERT_TRUE(r.ok) << kernel_name(k);
      ASSERT_EQ(attempt, cw) << kernel_name(k) << " trial " << trial;
    }
  }
}

TEST(GfKernels, KernelNamesRoundTrip) {
  EXPECT_STREQ(kernel_name(Kernel::kScalar), "scalar");
  EXPECT_STREQ(kernel_name(Kernel::kSlice8), "slice8");
  EXPECT_STREQ(kernel_name(Kernel::kSimd), "simd");
  EXPECT_TRUE(kernel_available(Kernel::kScalar));
  EXPECT_TRUE(kernel_available(Kernel::kSlice8));
}

TEST(GfKernels, ResolveHonorsEnvOverride) {
  // resolve_kernel_from_env re-reads the environment on every call, so the
  // test can drive it directly without forking.
  ::setenv("ECCSIM_KERNEL", "scalar", 1);
  EXPECT_EQ(resolve_kernel_from_env(), Kernel::kScalar);
  ::setenv("ECCSIM_KERNEL", "slice8", 1);
  EXPECT_EQ(resolve_kernel_from_env(), Kernel::kSlice8);
  ::unsetenv("ECCSIM_KERNEL");
  const Kernel def = resolve_kernel_from_env();
  EXPECT_TRUE(def == Kernel::kSimd || def == Kernel::kSlice8);
  EXPECT_TRUE(kernel_available(def));
}

using GfKernelsDeathTest = ::testing::Test;

TEST(GfKernelsDeathTest, UnknownEnvValueExits2) {
  // Same convention as an unknown bench flag: a typo must not silently
  // run the default kernel and mislabel a measurement.
  EXPECT_EXIT(
      {
        ::setenv("ECCSIM_KERNEL", "turbo", 1);
        resolve_kernel_from_env();
      },
      ::testing::ExitedWithCode(2), "ECCSIM_KERNEL");
}

}  // namespace
}  // namespace eccsim::gf
