// Fault injector: maps sampled device-level fault events onto the
// functional ECC Parity manager's address space.
//
// This closes the loop between the two halves of the reproduction: the
// Monte Carlo engine says *when and where* (channel/rank/chip) faults
// strike and of what type; the injector translates each event into the
// set of memory lines whose stored bytes that device fault corrupts, and
// applies the corruption to an EccParityManager image -- after which the
// manager's scrub/read machinery (Sec. III-C) must detect, correct,
// retire, and materialize exactly as the paper describes.
//
// Scope mapping (per fault type, within the faulted chip):
//   bit / word  -> one line;
//   column      -> the same column (line slot) of every row of one bank;
//   row         -> every line of one row of one bank;
//   bank        -> every line of one bank;
//   multi-bank  -> every line of half the chip's banks;
//   multi-rank  -> every line of the chip position across all ranks.
// Only the faulted chip's share of each affected line is corrupted; the
// stuck-at pattern is deterministic per (event, line).
#pragma once

#include <cstdint>
#include <vector>

#include "eccparity/manager.hpp"
#include "faults/montecarlo.hpp"

namespace eccsim::faults {

/// Summary of one injected event.
struct InjectionResult {
  FaultType type = FaultType::kBit;
  std::uint64_t lines_corrupted = 0;
};

/// Injects fault events into a functional manager.
class FaultInjector {
 public:
  /// `lines_per_scope_cap` bounds the number of lines corrupted per event
  /// so large-scope faults stay tractable in tests; the cap samples the
  /// affected region deterministically (every k-th line).  Pass 0 for
  /// uncapped injection.
  FaultInjector(eccparity::EccParityManager& manager,
                std::uint64_t lines_per_scope_cap = 512)
      : mgr_(manager), cap_(lines_per_scope_cap) {}

  /// Applies one sampled event; `chip` is interpreted as the within-rank
  /// data-chip position whose share is corrupted.
  InjectionResult inject(const FaultEvent& event);

  /// Applies a whole event history in time order, scrubbing after each
  /// event (the paper's detection model: the scrubber finds faults within
  /// one detection window).  Returns per-event summaries.
  std::vector<InjectionResult> inject_history(
      const std::vector<FaultEvent>& events, bool scrub_between = true);

 private:
  /// All line indices (in the manager's geometry) touched by the event.
  std::vector<std::uint64_t> affected_lines(const FaultEvent& e) const;

  eccparity::EccParityManager& mgr_;
  std::uint64_t cap_;
};

}  // namespace eccsim::faults
