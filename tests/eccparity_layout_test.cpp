// Tests for the ECC parity grouping and layout invariants (Sec. III-A).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "eccparity/layout.hpp"

namespace eccsim::eccparity {
namespace {

dram::MemGeometry small_geom(std::uint32_t channels) {
  dram::MemGeometry g;
  g.channels = channels;
  g.ranks_per_channel = 2;
  g.banks_per_rank = 8;
  g.rows_per_bank = 16;   // tiny so exhaustive sweeps are cheap
  g.line_bytes = 64;
  return g;
}

class LayoutParamTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LayoutParamTest, EveryLineBelongsToExactlyOneGroup) {
  const auto geom = small_geom(GetParam());
  ParityLayout layout(geom, 16);
  // Partition by group_of, then check members() reproduces exactly the
  // same partition: every line appears in precisely the member list of its
  // own group.
  std::map<std::uint64_t, std::set<std::uint64_t>> by_group;
  for (std::uint64_t line = 0; line < geom.total_data_lines(); ++line) {
    by_group[layout.group_of(line).key()].insert(line);
  }
  std::uint64_t covered = 0;
  for (std::uint64_t line = 0; line < geom.total_data_lines(); ++line) {
    const GroupId g = layout.group_of(line);
    const auto members = layout.members(g);
    std::set<std::uint64_t> member_set;
    for (const Member& m : members) member_set.insert(m.line_index);
    EXPECT_EQ(member_set, by_group[g.key()])
        << "members() disagrees with group_of() for line " << line;
    ++covered;
  }
  EXPECT_EQ(covered, geom.total_data_lines());
}

TEST_P(LayoutParamTest, MembersOccupyDistinctChannels) {
  const auto geom = small_geom(GetParam());
  ParityLayout layout(geom, 16);
  std::set<std::uint64_t> seen_groups;
  for (std::uint64_t line = 0; line < geom.total_data_lines(); line += 7) {
    const GroupId g = layout.group_of(line);
    if (!seen_groups.insert(g.key()).second) continue;
    std::set<std::uint32_t> channels;
    for (const Member& m : layout.members(g)) {
      EXPECT_TRUE(channels.insert(m.channel).second)
          << "two members share channel " << m.channel;
    }
  }
}

TEST_P(LayoutParamTest, ParityChannelDistinctFromAllMembers) {
  const auto geom = small_geom(GetParam());
  ParityLayout layout(geom, 16);
  std::set<std::uint64_t> seen_groups;
  for (std::uint64_t line = 0; line < geom.total_data_lines(); line += 5) {
    const GroupId g = layout.group_of(line);
    if (!seen_groups.insert(g.key()).second) continue;
    const std::uint32_t pc = layout.parity_channel(g);
    for (const Member& m : layout.members(g)) {
      EXPECT_NE(m.channel, pc) << "parity shares a channel with a member";
    }
  }
}

TEST_P(LayoutParamTest, FullGroupsHaveNMinus1Members) {
  const auto geom = small_geom(GetParam());
  const std::uint32_t n = GetParam();
  ParityLayout layout(geom, 16);
  // Primary groups always have N-1 members; leftover groups have N-1
  // except possibly the final partial block.
  std::uint64_t full = 0, partial = 0;
  std::set<std::uint64_t> seen;
  for (std::uint64_t line = 0; line < geom.total_data_lines(); ++line) {
    const GroupId g = layout.group_of(line);
    if (!seen.insert(g.key()).second) continue;
    const auto m = layout.members(g);
    if (m.size() == n - 1) ++full;
    else ++partial;
    if (!g.leftover) {
      EXPECT_EQ(m.size(), n - 1u);
    }
  }
  EXPECT_GT(full, 0u);
  // Partial groups only at the tail: at most one block's worth of slots.
  EXPECT_LE(partial, geom.lines_per_row());
}

TEST_P(LayoutParamTest, ParityLineAddressInReservedRows) {
  const auto geom = small_geom(GetParam());
  ParityLayout layout(geom, 16);
  for (std::uint64_t line = 0; line < geom.total_data_lines(); line += 11) {
    const GroupId g = layout.group_of(line);
    const dram::DramAddress a = layout.parity_line_address(g);
    EXPECT_LT(a.channel, geom.channels);
    EXPECT_EQ(a.channel, layout.parity_channel(g));
    EXPECT_GE(a.row, geom.rows_per_bank - layout.reserved_rows_per_bank());
    EXPECT_LT(a.row, geom.rows_per_bank);
  }
}

TEST_P(LayoutParamTest, XorCachelineCoversFourSlots) {
  const auto geom = small_geom(GetParam());
  ParityLayout layout(geom, 16);
  // Lines in the same stripe whose slots fall in the same 4-aligned bucket
  // share one XOR cacheline key; different buckets differ.
  const std::uint64_t l0 = 0;  // stripe 0, slot 0
  EXPECT_EQ(layout.xor_cacheline_key(l0), layout.xor_cacheline_key(l0 + 3));
  EXPECT_NE(layout.xor_cacheline_key(l0), layout.xor_cacheline_key(l0 + 4));
  EXPECT_EQ(layout.xor_coverage(), 4 * (GetParam() - 1));
}

TEST_P(LayoutParamTest, XorKeysDisjointFromLineIndices) {
  const auto geom = small_geom(GetParam());
  ParityLayout layout(geom, 16);
  for (std::uint64_t line = 0; line < geom.total_data_lines(); line += 13) {
    EXPECT_GE(layout.xor_cacheline_key(line), 1ULL << 62);
  }
}

INSTANTIATE_TEST_SUITE_P(ChannelCounts, LayoutParamTest,
                         ::testing::Values(2u, 4u, 5u, 8u, 10u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "N" + std::to_string(i.param);
                         });

TEST(ParityLayout, ReservedRowsMatchOverheadFormula) {
  // R = 16/64 = 0.25, N = 8: reserved fraction = 1.125 * 0.25 / 7 = 4.02%.
  dram::MemGeometry g = small_geom(8);
  g.rows_per_bank = 10000;
  ParityLayout layout(g, 16);
  const double frac = static_cast<double>(layout.reserved_rows_per_bank()) /
                      static_cast<double>(g.rows_per_bank);
  EXPECT_NEAR(frac, 1.125 * 0.25 / 7.0, 0.001);
}

TEST(ParityLayout, CoRetiredPagesIncludeStripe) {
  const auto geom = small_geom(4);
  ParityLayout layout(geom, 16);
  // Line in stripe 5, channel 2 (page 5*4+2 = 22).
  const std::uint64_t line = 22 * geom.lines_per_row() + 3;
  const auto pages = layout.co_retired_pages(line);
  // All four pages of stripe 5 must be present.
  for (std::uint64_t p = 20; p < 24; ++p) {
    EXPECT_NE(std::find(pages.begin(), pages.end(), p), pages.end())
        << "page " << p;
  }
}

TEST(ParityLayout, RejectsBadConfig) {
  dram::MemGeometry g = small_geom(1);
  EXPECT_THROW(ParityLayout(g, 16), std::invalid_argument);
  EXPECT_THROW(ParityLayout(small_geom(4), 0), std::invalid_argument);
  EXPECT_THROW(ParityLayout(small_geom(4), 65), std::invalid_argument);
}

}  // namespace
}  // namespace eccsim::eccparity
