// Fig. 17: memory accesses per instruction normalized to the baselines,
// dual-channel-equivalent systems.  The parity overhead is higher than in
// Fig. 16: each XOR cacheline covers fewer data lines when fewer channels
// share a parity, raising its miss rate (Sec. V-D).
#include "fig_perf_common.hpp"

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  eccsim::bench::ratio_figure(
      "fig17_mapi_dual",
      "Fig. 17 -- Memory accesses per instruction normalized to baselines (dual, <1 = fewer)",
      eccsim::ecc::SystemScale::kDualEquivalent,
      [](const eccsim::sim::RunResult& r) { return r.mapi; });
  return 0;
}
