// Ablation: degraded-mode steady state (Sec. III-C).  After a bank pair
// is marked faulty, every application read to it also fetches the
// materialized ECC line (step B) and every write updates it (step D) --
// the paper expects step B to be the most expensive added step.  This
// bench marks a growing fraction of one channel's banks faulty and
// measures the traffic and energy cost.  Because faults mark at most a
// few bank pairs in practice (Fig. 8: ~0.4% of memory), the interesting
// row is the small-fraction one; the full-channel row is a worst case.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf("Ablation -- degraded-mode cost of faulty banks (steps B/D)\n\n");
  sim::SimOptions base_opts;
  base_opts.target_instructions = bench::target_instructions();

  const auto desc = ecc::make_scheme(ecc::SchemeId::kLotEcc5Parity,
                                     ecc::SystemScale::kQuadEquivalent);
  Table t({"faulty banks", "EPI (pJ/instr)", "MAPI", "ECC reads/KI",
           "IPC"});
  for (unsigned faulty_banks : {0u, 2u, 8u, 32u}) {
    sim::SimOptions opts = base_opts;
    unsigned added = 0;
    for (std::uint32_t rank = 0; rank < desc.ranks_per_channel && added <
         faulty_banks; ++rank) {
      for (std::uint32_t bank = 0; bank < 8 && added < faulty_banks;
           ++bank) {
        opts.faulty_banks.push_back((0u << 16) | (rank << 8) | bank);
        ++added;
      }
    }
    // With --stats each row gets its own collector; degraded rows are the
    // one place the Fig. 6 slow-path counter and trace instants fire.
    opts.stats = bench::new_collector(
        "milc", "lotecc5+parity-f" + std::to_string(faulty_banks));
    sim::SystemSim s(desc, trace::workload_by_name("milc"),
                     sim::CpuConfig{}, opts);
    const auto r = s.run();
    const double ki = static_cast<double>(r.instructions) / 1000.0;
    t.add_row({std::to_string(faulty_banks), Table::num(r.epi_pj, 1),
               Table::num(r.mapi, 4),
               Table::num(static_cast<double>(r.mem.ecc_reads) / ki, 2),
               Table::num(r.ipc, 2)});
  }
  bench::emit("ablation_degraded", t);
  std::printf(
      "The realistic post-fault state (one pair = 2 banks of 256) adds\n"
      "little; even a fully-degraded channel stays serviceable because the\n"
      "ECC lines cache well in the LLC (Sec. III-D).\n");
  return 0;
}
