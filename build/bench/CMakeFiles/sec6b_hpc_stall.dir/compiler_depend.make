# Empty compiler generated dependencies file for sec6b_hpc_stall.
# This may be replaced when dependencies are built.
