// Live heartbeat/progress reporter for long-running drivers.
//
// A long Monte Carlo run or full-fidelity sweep used to be a black box
// until it exited.  The heartbeat publishes a machine-readable status
// snapshot -- a single JSON document, replaced atomically via
// write-to-temp-then-rename so a polling reader can never observe a torn
// file -- plus an optional human-readable stderr progress line.  Every
// long-running driver (the runner fan-out, the MC engine's chunk merges,
// tracetool's record/validate loops) ticks the process-global instance;
// `benchtool watch FILE` renders the snapshots.
//
// Strictly observation-only: ticks never feed back into simulation state,
// so enabling the heartbeat cannot change any simulated result.  Off by
// default; configured from the environment (or the bench --status /
// --progress flags, which set it):
//   ECCSIM_STATUS=FILE          write status snapshots to FILE
//   ECCSIM_PROGRESS=1           print a \r progress line to stderr
//   ECCSIM_STATUS_INTERVAL_MS=N min milliseconds between snapshots
//                               (default 200; first and final ticks of a
//                               phase always publish)
//
// Snapshot schema ("eccsim.heartbeat/1", see docs/OBSERVABILITY.md):
//   schema, pid, tool, phase, seq       identity; seq increments per write
//   timestamp_utc, elapsed_seconds, phase_elapsed_seconds
//   done, total                        items finished / planned (monotone
//                                      within a phase)
//   throughput_per_s, eta_seconds      derived; null until measurable
//   rel_ci, rel_ci_series              MC convergence (null / [] outside
//                                      Monte Carlo phases)
//   counters                           per-subsystem counters, by name
//   peak_rss_bytes, final
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace eccsim::obs {

struct HeartbeatConfig {
  std::string status_path;  ///< "" = no status file
  bool stderr_line = false;
  std::uint64_t min_interval_ms = 200;

  /// Reads ECCSIM_STATUS / ECCSIM_PROGRESS / ECCSIM_STATUS_INTERVAL_MS.
  static HeartbeatConfig from_env();
};

class Heartbeat {
 public:
  /// One progress observation.  `rel_ci` is the current relative 95% CI
  /// half-width of a converging Monte Carlo estimate (NaN = not
  /// applicable); `force` bypasses the interval throttle.
  struct Tick {
    std::string phase;
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    double rel_ci = std::numeric_limits<double>::quiet_NaN();
    std::vector<std::pair<std::string, double>> counters;
    bool force = false;
  };

  Heartbeat() = default;  ///< disabled
  explicit Heartbeat(HeartbeatConfig cfg) : cfg_(std::move(cfg)) {}

  /// False when neither output is configured; callers should skip any
  /// work needed to assemble a Tick in that case.
  bool enabled() const {
    return !cfg_.status_path.empty() || cfg_.stderr_line;
  }
  const HeartbeatConfig& config() const { return cfg_; }

  /// Names the process in snapshots (bench binary name).
  void set_tool(std::string name);

  /// Publishes a snapshot, subject to the interval throttle.  The first
  /// and final (`done >= total`) ticks of a phase always publish.
  /// Thread-safe; ticks from concurrent drivers interleave by phase.
  void tick(const Tick& t);

  std::uint64_t snapshots_written() const;

  /// The process-global heartbeat, configured from the environment on
  /// first use.
  static Heartbeat& global();

 private:
  std::string render_json(const Tick& t, double now) const;

  HeartbeatConfig cfg_;
  mutable std::mutex mu_;
  std::string tool_ = "eccsim";
  std::string phase_;
  double start_ = -1.0;        ///< first-tick monotonic time
  double phase_start_ = -1.0;  ///< current phase's first-tick time
  double last_write_ = -1.0;
  std::uint64_t seq_ = 0;
  std::vector<double> rel_ci_series_;  ///< bounded, current phase only
};

/// Writes `content` to `path` through a same-directory temporary file and
/// std::rename, creating parent directories.  A concurrent reader sees
/// either the previous document or the new one, never a mix.
bool atomic_write_file(const std::string& path, const std::string& content);

}  // namespace eccsim::obs
