# Empty compiler generated dependencies file for sec6a_mixed_ranks.
# This may be replaced when dependencies are built.
