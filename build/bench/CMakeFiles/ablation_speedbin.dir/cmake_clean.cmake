file(REMOVE_RECURSE
  "CMakeFiles/ablation_speedbin.dir/ablation_speedbin.cpp.o"
  "CMakeFiles/ablation_speedbin.dir/ablation_speedbin.cpp.o.d"
  "ablation_speedbin"
  "ablation_speedbin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speedbin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
