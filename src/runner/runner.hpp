// Parallel experiment runner (the fan-out-and-aggregate layer).
//
// Every evaluation figure in the paper is a grid of independent cells --
// one `sim::SystemSim` per (workload x ECC scheme) point -- that the bench
// binaries used to execute serially.  This runner fans the cells out over
// a work-stealing thread pool and collects results *by submission index*,
// so the output vector is bit-identical whatever the thread count: each
// cell owns its simulator, its workload generators, and (via
// `substream_seed`) its own deterministic RNG substream, and nothing is
// shared between cells but the result slots.
//
// The runner also standardizes observability: `Report` carries per-cell
// wall-clock plus the fan-out wall-clock (their ratio is the realized
// speedup), and the `to_json` / `write_json` helpers emit the
// machine-readable `results/<name>.json` files described in
// docs/REPRODUCING.md, stamped with run metadata (git SHA, thread count,
// timings).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/json.hpp"
#include "sim/system.hpp"

namespace eccsim::runner {

/// One independent experiment: a label pair plus the closure that runs it.
/// The closure must be self-contained (capture everything by value) --
/// cells execute concurrently in arbitrary order.
struct Cell {
  std::string scheme;    ///< ECC scheme label (or ablation knob value)
  std::string workload;  ///< workload label
  std::function<sim::RunResult()> work;
};

/// A finished cell: the simulator's metrics plus how long it took.
struct CellResult {
  sim::RunResult result;
  double wall_seconds = 0;
};

/// Everything one fan-out produced, in submission order.
struct Report {
  std::vector<CellResult> cells;
  unsigned threads = 1;      ///< pool size used
  double wall_seconds = 0;   ///< fan-out wall-clock (submit to last finish)
  double cell_seconds = 0;   ///< sum of per-cell wall-clock (serial cost)

  /// Realized parallel speedup: serial-equivalent time over wall time.
  double speedup() const {
    return wall_seconds > 0 ? cell_seconds / wall_seconds : 1.0;
  }
};

/// Fan-out knobs.
struct RunOptions {
  /// Pool size; 0 means ThreadPool::default_thread_count() (i.e. the
  /// RUNNER_THREADS environment variable or the hardware concurrency).
  unsigned threads = 0;
  /// Called after each cell completes (from the completing worker thread,
  /// serialized by the runner): (cells done, cells total, finished cell).
  std::function<void(std::size_t, std::size_t, const Cell&)> progress;
};

/// Runs every cell and returns their results in submission order.
/// Deterministic: the thread count and scheduling interleaving cannot
/// affect any result, only the timing fields.
Report run_cells(const std::vector<Cell>& cells,
                 const RunOptions& opts = RunOptions{});

/// Derives a statistically independent 64-bit seed for substream `stream`
/// of `root_seed` (SplitMix64 fan-out).  Cells that must observe the same
/// stimulus -- e.g. every ECC scheme evaluated on one workload -- should
/// share a stream index; unrelated cells should not.
std::uint64_t substream_seed(std::uint64_t root_seed, std::uint64_t stream);

/// Provenance stamped into every emitted JSON document.
struct RunMetadata {
  std::string git_sha;      ///< HEAD commit, or "unknown" outside a repo
  unsigned threads = 1;     ///< ThreadPool::default_thread_count()
  std::string timestamp;    ///< ISO-8601 UTC wall-clock of collection
  bool quick = false;       ///< ECCSIM_QUICK reduced-fidelity run
  bool smoke = false;       ///< ECCSIM_SMOKE CI-sized run
};

/// Collects metadata for the current process (reads .git/HEAD by walking
/// up from the working directory; never shells out).
RunMetadata collect_metadata();

// --- JSON encoding ---------------------------------------------------------

Json to_json(const RunMetadata& meta);
/// Full per-cell metrics: identity, performance (IPC), energy breakdown
/// (EPI split into dynamic/background, per-component pJ), traffic (MAPI,
/// bandwidth, data/ECC read+write counters), and wall-clock.
Json to_json(const CellResult& cell);
/// The whole fan-out: metadata-free cell array plus thread/timing summary.
Json to_json(const Report& report);

/// Writes `doc` (pretty-printed, trailing newline) to `path`, creating
/// parent directories; returns false on I/O failure.
bool write_json(const std::string& path, const Json& doc);

}  // namespace eccsim::runner
