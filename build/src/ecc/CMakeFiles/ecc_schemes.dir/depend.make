# Empty dependencies file for ecc_schemes.
# This may be replaced when dependencies are built.
