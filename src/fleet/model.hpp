// Per-node failure model and fleet-level aggregation.
//
// Layer (1) of the fleet subsystem: maps one node index to a deterministic
// per-node simulation (fault lifetime sampling + scheme-class coincidence
// detection), and folds the resulting fixed-width field blocks -- in
// strict node-index order -- into fleet metrics: expected annual node
// loss, fleet availability (nines), and uncorrected-error-event quantiles.
//
// The split into FleetModel (produces fields) and FleetAccumulator
// (consumes fields) mirrors the McSystemFn/McMergeFn contract of
// faults::mc_run: the producer runs on any worker (thread or spawned
// process), the consumer runs single-threaded in index order, and the
// final result is a pure function of the ordered field stream -- which is
// what makes merged output byte-identical at any shard count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "faults/montecarlo.hpp"
#include "fleet/spec.hpp"

namespace eccsim::runner {
class Json;
}

namespace eccsim::fleet {

/// Fixed per-node field block, the unit of the work-unit envelope:
///   [0] uncorrected error events over the node lifetime
///   [1] time of the first event in hours (+inf when the node never fails)
///   [2] downtime hours if every event is repaired (spares permitting)
///   [3] counter-saturating (column-or-larger) hard faults sampled
inline constexpr std::size_t kNodeFields = 4;

inline constexpr std::size_t kFieldEvents = 0;
inline constexpr std::size_t kFieldFirstEvent = 1;
inline constexpr std::size_t kFieldDowntime = 2;
inline constexpr std::size_t kFieldHardFaults = 3;

/// Deterministic per-node simulator for one FleetSpec.  Construction
/// precomputes each pool's system shape and filtered FIT rates; the spec
/// must already be validate()-clean.
class FleetModel {
 public:
  explicit FleetModel(const FleetSpec& spec);

  const FleetSpec& spec() const { return spec_; }
  std::uint64_t nodes() const { return nodes_; }

  /// Pool index owning global node `index` (pools are laid out
  /// contiguously in spec order).
  std::size_t pool_of(std::uint64_t index) const;

  /// Simulates node `index` with `rng` (derive it via
  /// faults::mc_system_rng(spec.seed, index)) and fills
  /// fields[0..kNodeFields).  Pure per node: no shared state.
  void node_fields(std::uint64_t index, Rng& rng, double* fields) const;

 private:
  struct PoolRuntime {
    faults::SystemShape shape;
    faults::FitRates rates;
    SchemeClass cls = SchemeClass::kIsolated;
  };

  FleetSpec spec_;
  std::uint64_t nodes_ = 0;
  std::vector<PoolRuntime> runtime_;
  std::vector<std::uint64_t> pool_end_;  ///< exclusive node-index bound
};

/// Aggregated outcome of one pool.
struct PoolResult {
  std::string name;
  std::uint64_t nodes = 0;
  double uncorrected_events = 0;
  std::uint64_t nodes_with_events = 0;
  std::uint64_t nodes_lost = 0;  ///< never repaired (no spare available)
  double downtime_hours = 0;     ///< summed over the pool, after depletion
  double hard_faults = 0;
};

/// Aggregated outcome of the whole fleet.
struct FleetResult {
  std::string name;
  std::string config_hash;
  std::uint64_t nodes = 0;
  double lifetime_hours = 0;

  double uncorrected_events = 0;
  std::uint64_t nodes_with_events = 0;
  std::uint64_t nodes_lost = 0;
  double downtime_hours = 0;

  double annual_node_loss = 0;  ///< expected nodes lost per deployment year
  double availability = 0;      ///< in-service node-hours / total node-hours
  double availability_nines = 0;

  /// Nearest-rank quantiles of uncorrected events per node, and whether
  /// they are exact or reservoir-estimated.
  double events_p50 = 0, events_p99 = 0, events_p999 = 0;
  bool quantiles_exact = true;

  std::vector<PoolResult> pools;
};

/// Retained-sample bound for the event quantiles (same policy as
/// faults::kEolReservoirCap): exhaustive up to this many nodes, a
/// deterministic bottom-k subset beyond it.
inline constexpr std::size_t kFleetReservoirCap = 1 << 16;

/// Folds per-node field blocks into a FleetResult.  add() must be called
/// once per node in strictly increasing index order (the coordinator's
/// merge guarantees this); finalize() resolves spare-pool depletion and
/// computes the derived metrics.
class FleetAccumulator {
 public:
  explicit FleetAccumulator(const FleetModel& model);

  void add(std::uint64_t index, const double* fields);
  FleetResult finalize() const;

 private:
  struct Demand {
    double first_time;
    std::uint64_t node;
    bool operator<(const Demand& o) const {
      return first_time != o.first_time ? first_time < o.first_time
                                        : node < o.node;
    }
  };

  const FleetModel* model_;
  std::vector<PoolResult> pools_;
  QuantileReservoir events_;
  std::vector<Demand> demands_;       ///< one per failing node, index order
  std::vector<std::size_t> demand_pool_;
  std::vector<double> demand_repaired_downtime_;
};

/// Serializes a FleetResult as an `eccsim.fleet/1` document (see
/// docs/OBSERVABILITY.md).  Deliberately free of timestamps, shard counts,
/// and execution-mode fields -- those belong in the manifest -- so the
/// dump is byte-identical however the run was executed.
runner::Json result_to_json(const FleetResult& result);

}  // namespace eccsim::fleet
