file(REMOVE_RECURSE
  "libecc_faults.a"
)
