// Sec. VI-A: impact on maximum memory capacity.
//
// Energy-efficient chipkill (LOT-ECC5's wide x16 chips) needs 4x more
// ranks per channel than commercial chipkill's x4 chips for the same
// capacity and pins -- and electrical constraints cap ranks per channel.
// The paper's mitigation: mix wide-DRAM ranks (for hot pages) and
// narrow-DRAM ranks (for capacity) in one channel, accept that the narrow
// ranks must carry the same strong ECC, and use ECC Parity to keep that
// ECC's capacity overhead down.
//
// This bench models a channel with a fraction `h` of accesses served by
// 5-chip x16 ranks and the rest by 18-chip x4 ranks, and reports the
// per-access dynamic energy and the capacity overhead (both rank types
// under ECC Parity) as h sweeps -- showing most of the wide-rank energy is
// captured once hot pages cover ~80-90% of accesses.
#include <cstdio>

#include "bench_common.hpp"
#include "dram/spec.hpp"

using namespace eccsim;

namespace {

/// Per-access (activate + read burst) energy of a rank, pJ.
double access_pj(dram::DeviceWidth width, unsigned chips) {
  const auto dev = dram::micron_2gb(width);
  return (dev.energy.act_pj + dev.energy.rd_burst_pj) * chips;
}

}  // namespace

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf("Sec. VI-A -- mixed wide/narrow ranks in one channel\n\n");

  const double wide_pj = access_pj(dram::DeviceWidth::kX16, 5);    // LOT-ECC5
  const double narrow_pj = access_pj(dram::DeviceWidth::kX4, 18);  // x4 rank
  const double all_narrow = narrow_pj;

  // Capacity per rank: wide = 4 x16 2Gb data chips = 1 GiB;
  // narrow = 16 x4 2Gb data chips = 4 GiB.
  const double wide_rank_gib = 1.0;
  const double narrow_rank_gib = 4.0;

  Table t({"hot-access share in wide ranks", "energy/access (pJ)",
           "vs all-narrow", "vs all-wide",
           "max capacity (4-rank channel, GiB)"});
  for (double h : {0.0, 0.5, 0.8, 0.9, 0.95, 1.0}) {
    const double epa = h * wide_pj + (1 - h) * narrow_pj;
    // Capacity with as many narrow ranks as the hot share allows: at h=1
    // all four rank slots are wide; at h=0 all are narrow.  Use a simple
    // proportional mix of the 4 rank slots.
    const unsigned wide_ranks =
        static_cast<unsigned>(h * 4.0 + 0.5);
    const double cap = wide_ranks * wide_rank_gib +
                       (4 - wide_ranks) * narrow_rank_gib;
    t.add_row({Table::pct(h, 0), Table::num(epa, 0),
               Table::num((1 - epa / all_narrow) * 100, 1) + "% lower",
               Table::num((epa / wide_pj - 1) * 100, 1) + "% higher",
               Table::num(cap, 0)});
  }
  bench::emit("sec6a_mixed_ranks", t);

  const auto lot5p = ecc::make_scheme(ecc::SchemeId::kLotEcc5Parity,
                                      ecc::SystemScale::kQuadEquivalent);
  std::printf(
      "Both rank types must carry the wide-rank-strength ECC (a faulty\n"
      "wide DRAM shares I/O lanes with several narrow DRAMs); with ECC\n"
      "Parity that costs %s instead of LOT-ECC5's standalone 40.6%%,\n"
      "which is what makes the mixed-channel design palatable (Sec. VI-A).\n",
      Table::pct(lot5p.capacity_overhead()).c_str());
  return 0;
}
