#include "ecc/lotecc5_rs16.hpp"

#include <algorithm>
#include <stdexcept>

#include "gf/rs.hpp"

namespace eccsim::ecc {

namespace {

/// Sec. VI-D codec: RS(10, 8) over GF(2^16) per 16-byte word, four words
/// per 64B line, symbols interleaved across the four x16 chips.
///
/// Symbol placement within a word: symbols 2k and 2k+1 belong to chip k.
/// In the data line's byte layout we keep LOT-ECC5's chip striping (chip k
/// owns bytes [16k, 16k+16)), so word w's symbol 2k is chip k's bytes
/// {4w, 4w+1} and symbol 2k+1 is bytes {4w+2, 4w+3}.
class LotEcc5Rs16Codec final : public LineCodec {
 public:
  LotEcc5Rs16Codec() : code_(10, 8) {}

  unsigned data_bytes() const override { return 64; }
  // First check symbol per word, in the x8 ECC chip: 4 words x 2B = 8B.
  unsigned detection_bytes() const override { return 8; }
  // Second check symbol (8B) + per-chip intra-chip checksums (4 x 2B):
  // same 16B / R = 0.25 as plain LOT-ECC5.
  unsigned correction_bytes() const override { return 16; }
  unsigned chips() const override { return 5; }

  std::vector<std::uint8_t> detection_bits(
      std::span<const std::uint8_t> data) const override {
    require(data.size() == 64);
    std::vector<std::uint8_t> det(8);
    for (unsigned w = 0; w < 4; ++w) {
      const auto checks = code_.parity(word_symbols(data, w));
      // checks[1] is the first consecutive-root check symbol we expose for
      // on-the-fly detection; checks[0] goes into the correction bits.
      store16(det, w * 2, checks[1]);
    }
    return det;
  }

  std::vector<std::uint8_t> correction_bits(
      std::span<const std::uint8_t> data) const override {
    require(data.size() == 64);
    std::vector<std::uint8_t> corr(16);
    for (unsigned w = 0; w < 4; ++w) {
      const auto checks = code_.parity(word_symbols(data, w));
      store16(corr, w * 2, checks[0]);
    }
    for (unsigned c = 0; c < 4; ++c) {
      store16(corr, 8 + c * 2, chip_checksum(data, c));
    }
    return corr;
  }

  bool detect(std::span<const std::uint8_t> data,
              std::span<const std::uint8_t> det) const override {
    require(data.size() == 64 && det.size() == 8);
    for (unsigned w = 0; w < 4; ++w) {
      // Inter-chip detection: recompute the exposed check symbol.  Unlike
      // an intra-chip checksum, this catches a chip returning data from
      // the wrong address (Sec. VI-D's address-decoder case).
      const auto checks = code_.parity(word_symbols(data, w));
      if (checks[1] != load16(det, w * 2)) return true;
    }
    return false;
  }

  CodecResult correct(std::span<std::uint8_t> data,
                      std::span<const std::uint8_t> det,
                      std::span<const std::uint8_t> corr,
                      std::span<const unsigned> known_bad_chips)
      const override {
    require(data.size() == 64 && det.size() == 8 && corr.size() == 16);
    CodecResult result;
    result.detected = detect(data, det);

    // Localize: intra-chip checksums (from the correction bits) name the
    // failed chip; an explicit erasure hint is honored too.
    std::vector<unsigned> bad_chips;
    for (unsigned c = 0; c < 4; ++c) {
      if (chip_checksum(data, c) != load16(corr, 8 + c * 2)) {
        bad_chips.push_back(c);
      }
    }
    for (unsigned c : known_bad_chips) {
      if (c < 4 && std::find(bad_chips.begin(), bad_chips.end(), c) ==
                       bad_chips.end()) {
        bad_chips.push_back(c);
      }
    }
    if (bad_chips.empty()) {
      if (!result.detected) {
        result.ok = true;
        return result;
      }
      // Inter-chip detection fired but no chip self-reports: an address
      // error pattern.  Try unknown-error decoding (1 symbol per word).
      bad_chips.clear();
    }
    if (bad_chips.size() > 1) return result;  // beyond single-chip-kill

    bool all_ok = true;
    std::vector<bool> chip_fixed(4, false);
    // Decoded words are written back immediately; the line snapshot keeps
    // the restore-on-failure contract when a later word fails (or the
    // end-to-end verify below does).
    const std::vector<std::uint8_t> original(data.begin(), data.end());
    for (unsigned w = 0; w < 4; ++w) {
      // Codeword layout: [check0 check1 | 8 data symbols].
      std::vector<std::uint16_t> cw(10);
      cw[0] = load16(corr, w * 2);
      cw[1] = load16(det, w * 2);
      const auto syms = word_symbols(data, w);
      std::copy(syms.begin(), syms.end(), cw.begin() + 2);
      std::vector<unsigned> erasures;
      for (unsigned c : bad_chips) {
        erasures.push_back(2 + 2 * c);      // the chip's two symbols
        erasures.push_back(2 + 2 * c + 1);
      }
      const std::vector<std::uint16_t> before = cw;
      const auto dec = code_.decode(cw, erasures);
      if (!dec.ok) {
        all_ok = false;
        continue;
      }
      for (unsigned s = 0; s < 8; ++s) {
        if (cw[2 + s] != before[2 + s]) chip_fixed[s / 2] = true;
      }
      write_word_symbols(data, w, std::span<const std::uint16_t>(
                                      cw.data() + 2, 8));
    }
    if (!all_ok || detect(data, det)) {  // verify end to end
      std::copy(original.begin(), original.end(), data.begin());
      return result;
    }
    result.ok = true;
    result.corrected_chips = static_cast<unsigned>(
        std::count(chip_fixed.begin(), chip_fixed.end(), true));
    return result;
  }

  std::vector<unsigned> chip_data_offsets(unsigned chip) const override {
    std::vector<unsigned> offsets;
    if (chip < 4) {
      for (unsigned b = 0; b < 16; ++b) offsets.push_back(chip * 16 + b);
    }
    return offsets;
  }

 private:
  static void require(bool cond) {
    if (!cond) throw std::invalid_argument("LotEcc5Rs16Codec: bad span size");
  }
  static std::uint16_t load16(std::span<const std::uint8_t> v, unsigned off) {
    return static_cast<std::uint16_t>(v[off] | (v[off + 1] << 8));
  }
  static void store16(std::span<std::uint8_t> v, unsigned off,
                      std::uint16_t x) {
    v[off] = static_cast<std::uint8_t>(x);
    v[off + 1] = static_cast<std::uint8_t>(x >> 8);
  }
  /// Word w's eight 16-bit symbols; symbols 2k, 2k+1 come from chip k.
  static std::vector<std::uint16_t> word_symbols(
      std::span<const std::uint8_t> data, unsigned w) {
    std::vector<std::uint16_t> syms(8);
    for (unsigned c = 0; c < 4; ++c) {
      const unsigned base = c * 16 + w * 4;
      syms[2 * c] = load16(data, base);
      syms[2 * c + 1] = load16(data, base + 2);
    }
    return syms;
  }
  static void write_word_symbols(std::span<std::uint8_t> data, unsigned w,
                                 std::span<const std::uint16_t> syms) {
    for (unsigned c = 0; c < 4; ++c) {
      const unsigned base = c * 16 + w * 4;
      store16(data, base, syms[2 * c]);
      store16(data, base + 2, syms[2 * c + 1]);
    }
  }
  /// Intra-chip checksum over chip c's 16 bytes: a polynomial evaluation
  /// over GF(2^16).  Unlike a Fletcher/Adler sum this is GF(2)-LINEAR
  /// (checksum(a^b) == checksum(a)^checksum(b)), which is mandatory here:
  /// Sec. VI-D stores these checksums *via ECC parities*, so they must
  /// XOR-combine across channels and support the Eq. 1 incremental update.
  static std::uint16_t chip_checksum(std::span<const std::uint8_t> data,
                                     unsigned c) {
    std::uint16_t acc = 0;
    for (unsigned i = 0; i < 16; i += 2) {
      const std::uint16_t sym = load16(data, c * 16 + i);
      acc = gf::GF65536::add(gf::GF65536::mul(acc, 0x1234), sym);
    }
    return acc;
  }

  gf::Rs16 code_;
};

}  // namespace

std::unique_ptr<LineCodec> make_lotecc5_rs16_codec() {
  return std::make_unique<LotEcc5Rs16Codec>();
}

}  // namespace eccsim::ecc
