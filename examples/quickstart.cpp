// Quickstart: the ECC Parity mechanism end to end in ~60 lines of API use.
//
// Builds an 8-channel memory system protected by LOT-ECC5 + ECC Parity,
// writes data, kills a DRAM chip's share of a line, and shows the Fig. 6
// read path doing its job: on-the-fly detection, correction-bit
// reconstruction from the cross-channel ECC parity, correction, and
// write-back of the repaired line.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "ecc/codec.hpp"
#include "eccparity/manager.hpp"

using namespace eccsim;

int main() {
  // An 8-channel system (the paper's headline configuration): LOT-ECC5
  // underneath, so each 64B line is striped over four x16 data chips with
  // 16B of correction bits (R = 0.25).
  dram::MemGeometry geom;
  geom.channels = 8;
  geom.ranks_per_channel = 4;
  geom.banks_per_rank = 8;
  geom.rows_per_bank = 1024;
  geom.line_bytes = 64;

  eccparity::EccParityManager memory(
      geom, ecc::make_codec(ecc::SchemeId::kLotEcc5),
      /*error_threshold=*/4);

  std::printf("ECC Parity quickstart (8-channel LOT-ECC5 + ECC Parity)\n");
  std::printf("  parity reserved rows/bank : %llu of %llu\n",
              (unsigned long long)memory.layout().reserved_rows_per_bank(),
              (unsigned long long)geom.rows_per_bank);
  std::printf("  one XOR cacheline covers  : %u data lines\n\n",
              memory.layout().xor_coverage());

  // 1. Write some data.
  std::vector<std::uint8_t> payload(64);
  for (unsigned i = 0; i < 64; ++i) payload[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t line = 12345;
  memory.write_line(line, payload);
  std::printf("wrote line %llu; parity groups consistent: %s\n",
              (unsigned long long)line,
              memory.verify_parity_invariant() == 0 ? "yes" : "NO");

  // 2. A DRAM chip fails: its 16B share of the line is corrupted in place.
  //    Nothing else knows yet -- exactly like hardware.
  memory.corrupt_chip_share(line, /*chip=*/2);
  std::printf("injected a chip-2 fault into line %llu\n",
              (unsigned long long)line);

  // 3. The next read detects, reconstructs, corrects (Fig. 6, steps A1->C).
  const eccparity::ReadResult r = memory.read_line(line);
  std::printf("read line %llu:\n", (unsigned long long)line);
  std::printf("  error detected        : %s\n", r.error_detected ? "yes" : "no");
  std::printf("  corrected             : %s\n", r.corrected ? "yes" : "no");
  std::printf("  via parity reconstruction : %s\n",
              r.used_parity_reconstruction ? "yes" : "no");
  std::printf("  data intact           : %s\n",
              r.data == payload ? "yes" : "NO");

  // 4. The error was logged against the bank pair; below the threshold the
  //    OS retires the affected pages (Sec. III-C).
  std::printf("  pages retired         : %zu\n", memory.retired_page_count());
  std::printf("  bank pairs faulty     : %zu\n",
              memory.health().faulty_pairs());

  // 5. Subsequent reads are clean -- the corrected value was written back.
  const auto again = memory.read_line(line);
  std::printf("re-read: clean=%s, parity invariant violations=%llu\n",
              !again.error_detected ? "yes" : "NO",
              (unsigned long long)memory.verify_parity_invariant());
  return 0;
}
