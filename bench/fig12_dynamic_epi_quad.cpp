// Fig. 12: reduction in memory *dynamic* EPI (activate + read/write burst
// energy) over the baselines, quad-channel-equivalent systems.  The parity
// schemes win here because they read/write far fewer chips per request.
#include "fig_epi_common.hpp"

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  eccsim::bench::epi_style_figure(
      "fig12_dynamic_epi_quad",
      "Fig. 12 -- Dynamic EPI reduction, quad-channel-equivalent systems",
      eccsim::ecc::SystemScale::kQuadEquivalent,
      [](const eccsim::sim::RunResult& r) { return r.dynamic_epi_pj; });
  return 0;
}
