// Deterministic random number generation for simulation.
//
// All stochastic components of the simulator (fault Monte Carlo, synthetic
// workload generators, replacement tie-breaking) draw from Xoshiro256**,
// seeded through SplitMix64 so that a single 64-bit experiment seed expands
// into a full 256-bit state.  Xoshiro256** supports an efficient jump()
// operation that advances the stream by 2^128 draws, which we use to derive
// statistically independent per-thread / per-core / per-system sub-streams
// from one root seed.  Every experiment in this repository is exactly
// reproducible from its seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace eccsim {

/// SplitMix64: used only to expand a user seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the simulator's workhorse generator.
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", ACM TOMS 2021.  Period 2^256 - 1.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // 128-bit multiply-shift; rejection loop removes the final sliver of
    // bias.  For simulation bounds (<< 2^64) a single iteration dominates.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint64_t x = next();
      const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Exponentially distributed variate with the given rate (1/mean).
  /// Used for fault inter-arrival times (the paper assumes exponential
  /// failure distributions, Sec. II / Fig. 2).
  double exponential(double rate) {
    // 1 - u in (0,1] avoids log(0).
    return -std::log(1.0 - next_double()) / rate;
  }

  /// Advances the stream by 2^128 draws.  Streams separated by jump() are
  /// independent for any realistic simulation length.
  void jump() {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (1ULL << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        next();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

  /// Returns a generator for sub-stream `index` of this stream: a copy
  /// jumped forward `index + 1` times.  Deterministic fan-out for
  /// per-core / per-simulated-system generators.
  Rng substream(unsigned index) const {
    Rng r = *this;
    for (unsigned i = 0; i <= index; ++i) r.jump();
    return r;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace eccsim
