#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace eccsim::bench {

namespace {

// Root seed for the whole evaluation; per-workload substreams are derived
// from it so every scheme observes the same stimulus for a given workload
// (the comparisons in Figs. 10-17 are paired) while distinct workloads get
// statistically independent streams.
constexpr std::uint64_t kRootSeed = 1;

// Process start, approximated at static-init time; emit() reports elapsed
// wall-clock relative to it.
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) != "0";
}

bool quick_mode() { return env_flag("ECCSIM_QUICK"); }
bool smoke_mode() { return env_flag("ECCSIM_SMOKE"); }

bool cache_enabled() {
  const char* c = std::getenv("ECCSIM_SWEEP_CACHE");
  return c == nullptr || std::string(c) != "0";
}

std::string fidelity_suffix() {
  if (smoke_mode()) return "_smoke";
  if (quick_mode()) return "_quick";
  return "";
}

/// Output directory prefix: smoke runs are quarantined in a subdirectory
/// so CI-sized numbers never overwrite the committed full-fidelity CSVs.
std::string out_dir(const std::string& base) {
  return smoke_mode() ? base + "/smoke" : base;
}

std::string scale_name(ecc::SystemScale scale) {
  return scale == ecc::SystemScale::kQuadEquivalent ? "quad" : "dual";
}

std::string cache_path(ecc::SystemScale scale) {
  return "bench_results/sweep_" + scale_name(scale) + fidelity_suffix() +
         ".csv";
}

std::string serialize(const sim::RunResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.scheme << ',' << r.workload << ',' << r.instructions << ','
     << r.mem_cycles << ',' << r.ipc << ',' << r.epi_pj << ','
     << r.dynamic_epi_pj << ',' << r.background_epi_pj << ',' << r.mapi
     << ',' << r.bandwidth_utilization << ',' << r.avg_read_latency << ','
     << r.mem.reads << ',' << r.mem.writes << ',' << r.mem.ecc_reads << ','
     << r.mem.ecc_writes;
  return os.str();
}

bool deserialize(const std::string& line, sim::RunResult& r) {
  std::istringstream is(line);
  std::string cell;
  auto next = [&](std::string& out) {
    return static_cast<bool>(std::getline(is, out, ','));
  };
  std::string f[15];
  for (auto& s : f) {
    if (!next(s)) return false;
  }
  r.scheme = f[0];
  r.workload = f[1];
  r.instructions = std::stoull(f[2]);
  r.mem_cycles = std::stoull(f[3]);
  r.ipc = std::stod(f[4]);
  r.epi_pj = std::stod(f[5]);
  r.dynamic_epi_pj = std::stod(f[6]);
  r.background_epi_pj = std::stod(f[7]);
  r.mapi = std::stod(f[8]);
  r.bandwidth_utilization = std::stod(f[9]);
  r.avg_read_latency = std::stod(f[10]);
  r.mem.reads = std::stoull(f[11]);
  r.mem.writes = std::stoull(f[12]);
  r.mem.ecc_reads = std::stoull(f[13]);
  r.mem.ecc_writes = std::stoull(f[14]);
  return true;
}

std::vector<sim::RunResult> load_cache(const std::string& path) {
  std::vector<sim::RunResult> rows;
  std::ifstream in(path);
  if (!in) return rows;
  std::string line;
  while (std::getline(in, line)) {
    sim::RunResult r;
    if (deserialize(line, r)) rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<sim::RunResult> run_sweep(ecc::SystemScale scale) {
  // One cell per (workload, scheme), fanned out over the runner.  Each
  // cell builds its own SimOptions with the workload's substream seed, so
  // schemes stay paired per workload and nothing depends on execution
  // order.
  const auto schemes = ecc::all_schemes();
  const auto& workloads = trace::paper_workloads();
  std::vector<runner::Cell> cells;
  cells.reserve(workloads.size() * schemes.size());
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const std::uint64_t seed = runner::substream_seed(kRootSeed, wi);
    for (const auto id : schemes) {
      runner::Cell cell;
      cell.scheme = ecc::to_string(id);
      cell.workload = workloads[wi].name;
      cell.work = [id, scale, seed, name = workloads[wi].name] {
        sim::SimOptions opts;
        opts.target_instructions = target_instructions();
        opts.seed = seed;
        return sim::run_experiment(id, scale, name, opts);
      };
      cells.push_back(std::move(cell));
    }
  }

  const runner::Report report =
      run_cells("sweep " + scale_name(scale), cells);

  // Persist the per-cell metrics + fan-out timings (this is where the
  // realized speedup is recorded).
  runner::Json doc = runner::Json::object();
  doc.set("bench", "sweep_" + scale_name(scale));
  doc.set("scale", scale_name(scale));
  doc.set("target_instructions", target_instructions());
  doc.set("metadata", runner::to_json(runner::collect_metadata()));
  doc.set("run", runner::to_json(report));
  runner::write_json(
      out_dir("results") + "/sweep_" + scale_name(scale) + ".json", doc);

  std::vector<sim::RunResult> rows;
  rows.reserve(report.cells.size());
  for (const auto& c : report.cells) rows.push_back(c.result);
  return rows;
}

}  // namespace

std::uint64_t target_instructions() {
  if (smoke_mode()) return 50'000;
  return quick_mode() ? 200'000 : 1'000'000;
}

runner::Report run_cells(const std::string& label,
                         const std::vector<runner::Cell>& cells) {
  runner::RunOptions opts;
  opts.progress = [&label](std::size_t done, std::size_t total,
                           const runner::Cell& cell) {
    std::fprintf(stderr, "\r[%s] %zu/%zu (%s / %s)        ", label.c_str(),
                 done, total, cell.workload.c_str(), cell.scheme.c_str());
    std::fflush(stderr);
  };
  runner::Report report = runner::run_cells(cells, opts);
  std::fprintf(stderr,
               "\r[%s] %zu cells, %.1fs wall (%.1fs serial-equivalent, "
               "%.2fx on %u threads)\n",
               label.c_str(), cells.size(), report.wall_seconds,
               report.cell_seconds, report.speedup(), report.threads);
  return report;
}

const std::vector<sim::RunResult>& sweep(ecc::SystemScale scale) {
  static std::map<int, std::vector<sim::RunResult>> cache;
  const int key = static_cast<int>(scale);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const std::string path = cache_path(scale);
  if (cache_enabled()) {
    auto rows = load_cache(path);
    // 16 workloads x 8 schemes expected.
    if (rows.size() == trace::paper_workloads().size() *
                           ecc::all_schemes().size()) {
      return cache.emplace(key, std::move(rows)).first->second;
    }
  }
  auto rows = run_sweep(scale);
  if (cache_enabled()) {
    std::ostringstream os;
    for (const auto& r : rows) os << serialize(r) << '\n';
    write_file(path, os.str());
  }
  return cache.emplace(key, std::move(rows)).first->second;
}

const sim::RunResult& find(const std::vector<sim::RunResult>& rows,
                           const std::string& scheme,
                           const std::string& workload) {
  for (const auto& r : rows) {
    if (r.scheme == scheme && r.workload == workload) return r;
  }
  throw std::out_of_range("no result for " + scheme + "/" + workload);
}

int bin_of(const std::string& workload) {
  return trace::workload_by_name(workload).bin;
}

double reduction_pct(double baseline, double ours) {
  return (1.0 - ours / baseline) * 100.0;
}

void emit(const std::string& name, const Table& table) {
  std::printf("%s\n", table.str().c_str());
  write_file(out_dir("bench_results") + "/" + name + ".csv", table.csv());

  runner::Json doc = runner::Json::object();
  doc.set("bench", name);
  doc.set("metadata", runner::to_json(runner::collect_metadata()));
  doc.set("wall_seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        kProcessStart)
              .count());
  runner::Json tbl = runner::Json::object();
  runner::Json header = runner::Json::array();
  for (const auto& h : table.header()) header.push_back(h);
  tbl.set("header", header);
  runner::Json rows = runner::Json::array();
  for (const auto& r : table.row_data()) {
    runner::Json row = runner::Json::array();
    for (const auto& cell : r) row.push_back(cell);
    rows.push_back(row);
  }
  tbl.set("rows", rows);
  doc.set("table", tbl);
  runner::write_json(out_dir("results") + "/" + name + ".json", doc);
}

std::vector<std::string> workload_order() {
  std::vector<std::string> names;
  for (int bin : {1, 2}) {
    for (const auto& w : trace::paper_workloads()) {
      if (w.bin == bin) names.push_back(w.name);
    }
  }
  return names;
}

}  // namespace eccsim::bench
