# Empty dependencies file for ecc_parity.
# This may be replaced when dependencies are built.
