# Empty compiler generated dependencies file for eccparity_layout_test.
# This may be replaced when dependencies are built.
