// Fig. 10: memory energy-per-instruction reduction over the baselines in
// systems equivalent in physical bandwidth and size to the quad-channel
// commercial ECC memory systems.
//
// Paper's Bin2 averages: 59.5% vs chipkill36, 48.9% vs chipkill18, 23.1%
// vs LOT-ECC9, 20.5% vs Multi-ECC; Bin1: 46.0 / 34.6 / 12.8 / 11.3%;
// RAIM+Parity vs RAIM: 22.6% (Bin2) / 18.5% (Bin1).
#include "fig_epi_common.hpp"

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  eccsim::bench::epi_style_figure(
      "fig10_epi_quad",
      "Fig. 10 -- Memory EPI reduction, quad-channel-equivalent systems",
      eccsim::ecc::SystemScale::kQuadEquivalent,
      [](const eccsim::sim::RunResult& r) { return r.epi_pj; });
  return 0;
}
