file(REMOVE_RECURSE
  "libecc_trace.a"
)
