// Buffered, seekable .ecctrace reader plus the non-throwing deep
// validator behind `tracetool validate`.
//
// Construction parses and CRC-checks the header, then scans the chunk
// framing (seeking over payloads) to build an in-memory chunk index and
// verify the footer -- so a truncated file or bad magic/version is
// rejected up front, in O(chunks) I/O.  Payload CRCs are checked lazily,
// when a chunk is first decoded; a flipped bit is therefore caught before
// a single record of that chunk is surfaced.
//
// The per-chunk delta reset (codec.hpp) makes seek_chunk() exact: reading
// after a seek yields the same records as streaming from the start.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "tracefile/format.hpp"

namespace eccsim::tracefile {

/// Reader-side tallies, exported as tracefile.* stats during replay.
struct ReaderCounters {
  std::uint64_t chunks_decoded = 0;
  std::uint64_t payload_bytes = 0;
};

class TraceReader {
 public:
  /// Opens and indexes `path`.  Throws TraceError on missing file, bad
  /// magic/version, header corruption, or truncation.
  explicit TraceReader(const std::string& path);

  const TraceMeta& meta() const { return meta_; }
  const std::string& path() const { return path_; }
  std::uint64_t total_ops() const { return total_ops_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::uint64_t file_bytes() const { return file_bytes_; }
  const ReaderCounters& counters() const { return counters_; }

  /// Next pre-LLC record in stream order; false cleanly at end-of-trace.
  /// Throws TraceError on payload corruption or if meta().point is not
  /// kPreLlc.
  bool next(PreOp& out);
  /// Post-LLC counterpart of next(PreOp&).
  bool next(PostOp& out);

  /// Positions the stream at the first record of chunk `index`
  /// (chunk_count() == end-of-trace).  Throws on out-of-range.
  void seek_chunk(std::size_t index);

 private:
  struct ChunkInfo {
    std::uint64_t payload_offset = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t op_count = 0;
    std::uint32_t crc = 0;
  };

  void parse_header();
  void index_chunks();
  /// Loads and CRC-checks chunk `index` into the decode buffer.
  void load_chunk(std::size_t index);
  /// Advances to the next chunk if the decode buffer is drained; returns
  /// false at end-of-trace.
  bool ensure_records();

  std::string path_;
  std::ifstream in_;
  TraceMeta meta_;
  std::vector<ChunkInfo> chunks_;
  std::uint64_t total_ops_ = 0;
  std::uint64_t file_bytes_ = 0;
  ReaderCounters counters_;

  std::size_t next_chunk_ = 0;  ///< next chunk to load
  std::vector<PreOp> dec_pre_;
  std::vector<PostOp> dec_post_;
  std::size_t dec_pos_ = 0;
};

/// Outcome of a full-file scan: every chunk decoded and CRC-verified.
struct ValidateResult {
  bool ok = false;
  std::string error;  ///< empty when ok
  std::uint64_t ops = 0;
  std::uint64_t chunks = 0;
  std::uint64_t file_bytes = 0;
  TraceMeta meta;  ///< valid only when the header parsed
};

/// Deep-validates `path` without throwing: any TraceError is captured in
/// the result.  This is the engine of `tracetool validate` and the reason
/// a corrupted trace fails a sweep with a message instead of a crash.
ValidateResult validate_file(const std::string& path);

}  // namespace eccsim::tracefile
