// TraceSource: the simulator's single supplier of workload stimulus.
//
// sim::SystemSim consumes per-core MemOp streams through this interface
// and does not care where they come from: live synthetic generation
// (SyntheticSource, wrapping the calibrated CoreGenerators), replay of a
// recorded .ecctrace file (tracefile::ReplaySource), or a recording tee
// (tracefile::RecordingSource).  The contract that makes record/replay
// bit-identical is per-core determinism: for a given source
// configuration, the sequence of ops returned for each core is fixed and
// independent of how calls to different cores interleave.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/workload.hpp"

namespace eccsim::trace {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Next memory operation for `core` (0-based, < cores()).
  virtual MemOp next(unsigned core) = 0;

  /// The workload whose stimulus this source carries.
  virtual const WorkloadDesc& workload() const = 0;

  /// Number of per-core streams.
  virtual unsigned cores() const = 0;

  /// Human-readable provenance ("synthetic seed=..." / "replay of ...").
  virtual std::string describe() const = 0;
};

/// Live synthetic generation: one CoreGenerator per core, exactly the
/// seed-derivation the simulator has always used -- SystemSim results are
/// bit-identical to the pre-TraceSource code.
class SyntheticSource final : public TraceSource {
 public:
  SyntheticSource(const WorkloadDesc& desc, unsigned cores,
                  std::uint64_t seed);

  MemOp next(unsigned core) override { return gens_[core].next(); }
  const WorkloadDesc& workload() const override { return desc_; }
  unsigned cores() const override {
    return static_cast<unsigned>(gens_.size());
  }
  std::string describe() const override;

 private:
  WorkloadDesc desc_;
  std::uint64_t seed_;
  std::vector<CoreGenerator> gens_;
};

}  // namespace eccsim::trace
