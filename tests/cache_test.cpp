// Unit tests for the shared LLC model.
#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hpp"

namespace eccsim::cache {
namespace {

CacheConfig tiny_cache() {
  CacheConfig cfg;
  cfg.size_bytes = 64 * 64;  // 64 lines
  cfg.line_bytes = 64;
  cfg.ways = 4;              // 16 sets
  return cfg;
}

TEST(Cache, ConfigValidation) {
  CacheConfig bad = tiny_cache();
  bad.ways = 0;
  EXPECT_THROW(Cache{bad}, std::invalid_argument);
  bad = tiny_cache();
  bad.size_bytes = 64 * 60;  // 15 sets: not a power of two
  EXPECT_THROW(Cache{bad}, std::invalid_argument);
}

TEST(Cache, PaperLlcGeometry) {
  Cache llc{CacheConfig{}};  // defaults = Table I LLC
  EXPECT_EQ(llc.sets(), 8192u);
  EXPECT_EQ(llc.ways(), 16u);
}

TEST(Cache, MissThenHit) {
  Cache c{tiny_cache()};
  EXPECT_FALSE(c.access(100, false).hit);
  EXPECT_TRUE(c.access(100, false).hit);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, WriteMakesDirtyVictim) {
  Cache c{tiny_cache()};
  c.access(42, true);  // dirty
  // Evict it by filling its set with enough conflicting lines.  Addresses
  // map through a hash, so brute-force: insert lines until 42 is gone.
  std::uint64_t addr = 1000;
  bool evicted_42 = false;
  for (int i = 0; i < 4096 && !evicted_42; ++i, ++addr) {
    const AccessResult r = c.access(addr, false);
    if (r.writeback && r.victim_addr == 42) evicted_42 = true;
  }
  EXPECT_TRUE(evicted_42);
}

TEST(Cache, CleanVictimNeedsNoWriteback) {
  Cache c{tiny_cache()};
  c.access(42, false);  // clean
  std::uint64_t addr = 1000;
  for (int i = 0; i < 4096; ++i, ++addr) {
    const AccessResult r = c.access(addr, false);
    ASSERT_FALSE(r.writeback && r.victim_addr == 42)
        << "clean line must not be written back";
    if (!c.contains(42)) break;
  }
  EXPECT_FALSE(c.contains(42));
}

TEST(Cache, LruEvictsOldest) {
  // Access two dirty lines, refresh the first, then stream conflicting
  // lines through: each victim is written back exactly once, and the
  // refreshed line must not be evicted before the stale one in its set.
  Cache c{tiny_cache()};
  c.access(10, true);
  c.access(20, true);
  c.access(10, false);  // refresh 10
  int evictions_10 = 0, evictions_20 = 0;
  for (std::uint64_t x = 5000; x < 9096; ++x) {
    const auto r = c.access(x, false);
    if (r.writeback && r.victim_addr == 10) ++evictions_10;
    if (r.writeback && r.victim_addr == 20) ++evictions_20;
    if (!c.contains(10) && !c.contains(20)) break;
  }
  EXPECT_EQ(evictions_10, 1);
  EXPECT_EQ(evictions_20, 1);
}

TEST(Cache, FillDoesNotMarkDirty) {
  Cache c{tiny_cache()};
  c.fill(77);
  EXPECT_TRUE(c.contains(77));
  EXPECT_FALSE(c.invalidate(77));  // returns dirty flag
}

TEST(Cache, FillOnPresentLineIsNoop) {
  Cache c{tiny_cache()};
  c.access(77, true);
  const auto r = c.fill(77);
  EXPECT_TRUE(r.hit);
  EXPECT_TRUE(c.invalidate(77));  // still dirty from the write
}

TEST(Cache, KindsAreTracked) {
  Cache c{tiny_cache()};
  c.access(1, true, LineKind::kXor);
  std::uint64_t addr = 1000;
  bool saw_xor_victim = false;
  for (int i = 0; i < 4096 && !saw_xor_victim; ++i, ++addr) {
    const auto r = c.access(addr, false);
    if (r.writeback && r.victim_addr == 1) {
      saw_xor_victim = r.victim_kind == LineKind::kXor;
    }
  }
  EXPECT_TRUE(saw_xor_victim);
}

TEST(Cache, FlushWritesBackAllDirty) {
  Cache c{tiny_cache()};
  c.access(1, true, LineKind::kData);
  c.access(2, true, LineKind::kEcc);
  c.access(3, false);
  std::vector<std::pair<std::uint64_t, LineKind>> flushed;
  c.flush([&](std::uint64_t a, LineKind k) { flushed.emplace_back(a, k); });
  EXPECT_EQ(flushed.size(), 2u);
  EXPECT_FALSE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_FALSE(c.contains(3));
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c{tiny_cache()};
  c.access(9, true);
  EXPECT_TRUE(c.invalidate(9));
  EXPECT_FALSE(c.contains(9));
  EXPECT_FALSE(c.invalidate(9));
}

TEST(Cache, HitRateComputation) {
  Cache c{tiny_cache()};
  c.access(1, false);
  c.access(1, false);
  c.access(1, false);
  c.access(2, false);
  EXPECT_NEAR(c.stats().hit_rate(), 0.5, 1e-9);
}

TEST(Cache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  Cache c{tiny_cache()};
  for (std::uint64_t a = 0; a < 32; ++a) c.access(a, false);
  const auto misses_before = c.stats().misses;
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t a = 0; a < 32; ++a) c.access(a, false);
  }
  // A 64-line cache holding a 32-line working set may still conflict-miss
  // under hashed indexing, but the steady-state miss rate must be tiny.
  EXPECT_LE(c.stats().misses - misses_before, 32u);
}

}  // namespace
}  // namespace eccsim::cache
