# Empty dependencies file for fig11_epi_dual.
# This may be replaced when dependencies are built.
