// Monte Carlo lifetime simulation of multi-channel memory systems under
// field DRAM fault rates, plus the closed-form models it is validated
// against.  Drives Fig. 2 (mean time between faults in different channels),
// Fig. 8 (end-of-life fraction of memory with materialized correction
// bits), Fig. 18 (probability of multi-channel faults inside one scrub
// window), Table III's EOL columns, and the Sec. VI-B HPC stall estimate.
//
// Sampling: each chip's faults of each type arrive as independent Poisson
// processes (the exponential failure distribution the paper assumes).
// Execution runs on the chunked Monte Carlo engine (mc_engine.hpp) over
// the shared work-stealing runner pool: deterministic per-system RNG
// substreams with in-order merging make every result bit-identical at any
// thread count and chunk size, and each study accepts McOptions for
// confidence-interval early stop, chunk-granular checkpoint/resume, and
// mc.* observability.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "faults/fault_model.hpp"
#include "faults/mc_engine.hpp"

namespace eccsim::faults {

/// Geometry of one simulated system, in the units that matter for
/// reliability: channels x ranks x chips-per-rank, with 8 banks per chip.
struct SystemShape {
  unsigned channels = 8;
  unsigned ranks_per_channel = 4;
  unsigned chips_per_rank = 9;
  unsigned banks_per_rank = 8;

  unsigned chips_per_channel() const {
    return ranks_per_channel * chips_per_rank;
  }
  unsigned total_chips() const { return channels * chips_per_channel(); }
  /// Logical banks per channel (bank-pair bookkeeping granularity).
  unsigned banks_per_channel() const {
    return ranks_per_channel * banks_per_rank;
  }
  unsigned total_banks() const { return channels * banks_per_channel(); }
};

/// One sampled fault event.
struct FaultEvent {
  double time_hours = 0;
  FaultType type = FaultType::kBit;
  unsigned channel = 0;
  unsigned rank = 0;
  unsigned chip = 0;

  bool operator<(const FaultEvent& o) const { return time_hours < o.time_hours; }
};

/// Samples every fault event of one system over `lifetime_hours`.
std::vector<FaultEvent> sample_lifetime(const SystemShape& shape,
                                        const FitRates& rates,
                                        double lifetime_hours, Rng& rng);

// ---------------------------------------------------------------------------
// Fig. 2: mean time between faults in different channels.

struct MtbfResult {
  double analytic_hours = 0;     ///< 1 / (total fault rate of the system)
  /// Mean observed gap between successive faults in different channels.
  /// NaN when gaps_observed == 0: "no data" is distinct from "zero MTBF"
  /// (the JSON writer serializes the NaN as null).  Check has_data().
  double simulated_hours = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t gaps_observed = 0;
  std::uint64_t events_sampled = 0;
  McRunInfo mc;

  bool has_data() const { return gaps_observed > 0; }
};

/// Analytic mean time between faults anywhere in the system.  Faults in
/// *different* channels differ from this only by the (tiny) probability of
/// two consecutive faults sharing a channel.  +inf when the total rate or
/// the chip population is zero (a system that never faults).
double analytic_mtbf_hours(const SystemShape& shape, double total_fit);

MtbfResult mtbf_between_channels(const SystemShape& shape,
                                 const FitRates& rates, unsigned systems,
                                 double lifetime_hours, std::uint64_t seed,
                                 const McOptions& opts = {});

// ---------------------------------------------------------------------------
// Fig. 8 / Table III: end-of-life materialized-correction-bit fraction.

struct EolResult {
  double mean_fraction = 0;    ///< average fraction of memory in faulty pairs
  double p999_fraction = 0;    ///< 99.9th percentile across systems
  /// Whether p999_fraction is exact (every sample retained) or estimated
  /// from the bounded-memory reservoir (systems > reservoir capacity).
  bool p999_exact = true;
  double systems_with_any = 0; ///< fraction of systems with >= 1 faulty pair
  std::uint64_t events_sampled = 0;
  McRunInfo mc;
};

/// Retained-sample bound for the Fig. 8 tail percentile: populations up to
/// this size get exact percentiles; beyond it a deterministic bottom-k
/// reservoir (common/stats.hpp) bounds memory at this many samples.
inline constexpr std::size_t kEolReservoirCap = 1 << 16;

/// Simulates `systems` systems for `lifetime_hours` and reports the
/// fraction of memory whose ECC correction bits end up stored in memory
/// (i.e. the memory of bank pairs marked faulty), Sec. III-E.
EolResult eol_materialized_fraction(const SystemShape& shape,
                                    const FitRates& rates, unsigned systems,
                                    double lifetime_hours, std::uint64_t seed,
                                    const McOptions& opts = {});

// ---------------------------------------------------------------------------
// Fig. 18 / Sec. VI-C: scrub-interval analysis.

struct ScrubWindowResult {
  double analytic_probability = 0;   ///< P(>=2 channels fault in any window)
  double simulated_probability = 0;
  std::uint64_t bad_systems = 0;     ///< systems with >= 1 multi-channel window
  std::uint64_t events_sampled = 0;
  McRunInfo mc;
};

/// Analytic probability that faults occur in more than one channel within
/// any single detection window of `window_hours` during `lifetime_hours`.
double analytic_multichannel_window_probability(const SystemShape& shape,
                                                double total_fit,
                                                double window_hours,
                                                double lifetime_hours);

ScrubWindowResult multichannel_window_probability(
    const SystemShape& shape, const FitRates& rates, double window_hours,
    double lifetime_hours, unsigned systems, std::uint64_t seed,
    const McOptions& opts = {});

// ---------------------------------------------------------------------------
// Sec. VI-B: HPC stall estimate.

struct HpcStallParams {
  double total_memory_bytes = 2.0 * 1024 * 1024 * 1024 * 1024 * 1024;  // 2 PB
  double node_memory_bytes = 128.0 * 1024 * 1024 * 1024;               // 128 GB
  double nic_bandwidth_bytes_per_s = 1.0 * 1024 * 1024 * 1024;         // 1 GB/s
  double chip_capacity_bytes = 256.0 * 1024 * 1024;                    // 2 Gb
  double lifetime_hours = 7 * 24 * 365.25;
};

/// Fraction of time the whole HPC system is stalled migrating threads off
/// nodes with column-or-larger faults and reconstructing correction bits.
double hpc_stall_fraction(const HpcStallParams& params,
                          const FitRates& rates);

struct HpcStallResult {
  double analytic_fraction = 0;
  double simulated_fraction = 0;
  std::uint64_t events_sampled = 0;  ///< migration events across all systems
  McRunInfo mc;
};

/// Monte Carlo cross-check of hpc_stall_fraction: samples the Poisson
/// stream of column-or-larger faults over the whole machine for `systems`
/// independent machine lifetimes and accumulates the per-event stall.
HpcStallResult hpc_stall_fraction_mc(const HpcStallParams& params,
                                     const FitRates& rates, unsigned systems,
                                     std::uint64_t seed,
                                     const McOptions& opts = {});

}  // namespace eccsim::faults
