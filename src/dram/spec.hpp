// Pluggable DRAM device specifications (DDR3 / DDR4 / DDR5).
//
// Every device timing, topology, and power number consumed by the channel
// model flows through one value type, DramSpec.  The paper (Sec. IV-B)
// models 2Gb DDR3 DRAM chips with a 1 GHz I/O clock (DDR3-2000), with
// parameters taken from die revision D of the Micron 2Gb DDR3 SDRAM
// datasheet, and computes power with the standard Micron methodology
// (TN-41-01): activate energy from IDD0 against the standby floor, burst
// energy from IDD4R/IDD4W, background power from IDD2P/IDD2N/IDD3N,
// refresh from IDD5B.  The DDR4 and DDR5 specs extend the same methodology
// with bank groups (tCCD_S/tCCD_L, tRRD_S/tRRD_L), sub-channels, same-bank
// refresh, and an on-die SECDED pre-correction filter; see
// docs/DRAM_SPECS.md for the full contract and per-generation tables.
//
// All timing values are stored in memory-controller clock cycles.  The
// controller clock is 1 GHz (1 ns per cycle), so cycle counts equal
// nanoseconds for every generation modeled here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace eccsim::dram {

/// DRAM device data-bus width.  Width determines burst energy (more DQ pins
/// toggle) and the number of chips needed per rank.
enum class DeviceWidth : std::uint8_t { kX4 = 4, kX8 = 8, kX16 = 16 };

std::string to_string(DeviceWidth w);

/// DRAM device generation selected by a DramSpec.
enum class Generation : std::uint8_t { kDdr3 = 0, kDdr4 = 1, kDdr5 = 2 };

/// Canonical lowercase name ("ddr3", "ddr4", "ddr5").
std::string to_string(Generation g);

/// Parses a canonical generation name; std::nullopt for anything else.
std::optional<Generation> parse_generation(std::string_view name);

/// How REF commands are issued and which banks each one blacks out.
enum class RefreshPolicy : std::uint8_t {
  kAllBank,   ///< DDR3/DDR4: one REF per rank blacks out every bank for tRFC
  kSameBank,  ///< DDR5 REFsb: each REF targets one bank set for tRFC(sb)
};

/// On-die ECC (DDR5): a (data_bits + check_bits) SECDED code inside the
/// device, modeled as a pre-correction filter in front of the rank-level
/// ECC scheme under test.  It attenuates the single-bit fault rate seen by
/// the scheme (see faults::on_die_ecc_filter); it is not a full functional
/// model of the internal codewords.
struct OnDieEcc {
  bool enabled = false;
  unsigned data_bits = 0;   ///< codeword payload bits (DDR5: 128)
  unsigned check_bits = 0;  ///< codeword check bits (DDR5: 8)
  /// Fraction of single-bit faults the internal SECDED removes before the
  /// rank-level scheme sees them.  Below 1.0 because repeating hard
  /// single-bit faults can alias with a second error inside a codeword.
  double bit_fault_coverage = 0.0;
};

/// Timing constraints in controller cycles (1 ns @ 1 GHz).
///
/// Generations without bank groups (DDR3) set the _S and _L variants of
/// tRRD and tCCD to the same value, so the bank-group gates in the channel
/// model degenerate to the classic single constraints.
struct DramTiming {
  unsigned tCK = 1;       ///< controller clock period (cycles; identity)
  unsigned tRCD = 14;     ///< ACT to RD/WR
  unsigned tCL = 14;      ///< RD to first data
  unsigned tCWL = 10;     ///< WR to first data
  unsigned tRP = 14;      ///< PRE to ACT
  unsigned tRAS = 35;     ///< ACT to PRE
  unsigned tRC = 49;      ///< ACT to ACT, same bank
  unsigned tRRD_S = 6;    ///< ACT to ACT, same rank, different bank group
  unsigned tRRD_L = 6;    ///< ACT to ACT, same rank, same bank group
  unsigned tFAW = 30;     ///< four-activate window, same rank
  unsigned tWR = 15;      ///< end of write data to PRE
  unsigned tWTR = 8;      ///< end of write data to RD, same rank
  unsigned tRTP = 8;      ///< RD to PRE
  unsigned tCCD_S = 4;    ///< CAS to CAS, different bank group
  unsigned tCCD_L = 4;    ///< CAS to CAS, same bank group
  unsigned tBurst = 4;    ///< data-bus beats per burst, in clocks
  unsigned tRFC = 160;    ///< refresh blackout per REF (tRFCsb for kSameBank)
  unsigned tREFI = 7800;  ///< average interval between REF commands
  unsigned tXP = 6;       ///< power-down exit to first command
  unsigned tCKE = 6;      ///< minimum power-down residency
  unsigned tRTW = 8;      ///< read-to-write bus turnaround, same channel
};

/// IDD currents in milliamps and the supply voltage.
struct DramCurrents {
  double idd0 = 95;    ///< one-bank ACT-PRE cycling
  double idd2p = 12;   ///< precharge power-down (slow exit)
  double idd2n = 45;   ///< precharge standby
  double idd3p = 50;   ///< active power-down
  double idd3n = 62;   ///< active standby
  double idd4r = 140;  ///< burst read
  double idd4w = 145;  ///< burst write
  double idd5b = 235;  ///< burst refresh
  double vdd = 1.5;    ///< supply voltage (volts)
};

/// Per-event / per-state energy quantities derived from the currents, in
/// picojoules (energy) and picojoules-per-cycle (power at 1 ns cycles).
struct DramEnergy {
  double act_pj = 0;        ///< one ACT+PRE pair, per chip
  double rd_burst_pj = 0;   ///< one read burst, per chip
  double wr_burst_pj = 0;   ///< one write burst, per chip
  double refresh_pj = 0;    ///< one REF command, per chip
  double bg_pd_pj_cyc = 0;  ///< background, precharge power-down
  double bg_pre_pj_cyc = 0;   ///< background, precharge standby
  double bg_act_pj_cyc = 0;   ///< background, active standby
};

/// A complete device description: generation, geometry, timing, power.
///
/// This is the single source every layer reads: the channel model schedules
/// from `timing` and charges from `energy`, MemSystemConfig derives address
/// geometry from `banks`/`rows`/`columns`, the protocol checker re-derives
/// its rules from `timing` + `bank_groups` + `refresh`, and the Monte Carlo
/// benches consult `on_die_ecc`.  Construct one with micron_2gb() /
/// ddr4_8gb() / ddr5_16gb(), or generically with spec_for().
struct DramSpec {
  Generation generation = Generation::kDdr3;
  DeviceWidth width = DeviceWidth::kX8;
  std::uint64_t capacity_mbit = 2048;  ///< 2Gb parts throughout the paper
  unsigned banks = 8;         ///< banks per chip (all bank groups combined)
  unsigned bank_groups = 1;   ///< bank groups per chip (1 = no groups)
  unsigned sub_channels = 1;  ///< independent sub-channels per channel
  std::uint64_t rows = 32768;  ///< derived; see the factory functions
  unsigned columns = 1024;     ///< column addresses per row
  unsigned page_bytes = 2048;  ///< row-buffer size in bytes
  RefreshPolicy refresh = RefreshPolicy::kAllBank;
  OnDieEcc on_die_ecc;  ///< disabled for DDR3/DDR4
  DramTiming timing;
  DramCurrents currents;
  DramEnergy energy;  ///< derived from currents+timing by the factories

  /// A speed-multiplier knob for the Sec. V-D discussion (a 16% faster speed
  /// bin costs ~5% memory energy); 1.0 for the standard part.
  double speed_factor = 1.0;

  /// Bank group of a bank index.  Banks stripe across groups round-robin,
  /// so consecutive bank indices land in different groups (the friendly
  /// ordering for tCCD_L/tRRD_L).
  unsigned bank_group_of(unsigned bank) const { return bank % bank_groups; }

  /// Number of distinct bank sets the refresh rotation walks through: 1 for
  /// kAllBank, banks-per-group for kSameBank (a REFsb refreshes the same
  /// in-group bank index across every group).
  unsigned refresh_sets() const {
    return refresh == RefreshPolicy::kSameBank ? banks / bank_groups : 1;
  }

  /// Bank set refreshed by REF number `ref_index` (0-based).  For kAllBank
  /// this is always 0 (meaning "all banks").
  unsigned refresh_set_of_ref(std::uint64_t ref_index) const {
    return static_cast<unsigned>(ref_index % refresh_sets());
  }

  /// Bank set a bank index belongs to (its in-group index under kSameBank).
  unsigned refresh_set_of_bank(unsigned bank) const {
    return refresh == RefreshPolicy::kSameBank ? bank / bank_groups : 0;
  }
};

/// Legacy name for the DDR3-era device struct; every layer now takes the
/// generation-neutral DramSpec.
using Ddr3Device = DramSpec;

/// Builds the 2Gb Micron die-rev-D DDR3 device model for a given width —
/// the paper-faithful part.  Geometry: 2Gb DDR3 has 8 banks for all widths;
/// x4/x8 have 32K rows (x4: 2K cols, x8: 1K cols), x16 has 16K rows.  IDD4
/// scales with width (more DQ toggling); IDD0/IDD5 are slightly higher for
/// x16.  Bit-identical to the pre-spec-layer ddr3_params constants (pinned
/// by tests/dram_spec_test.cpp and scripts/ddr3_identity_check.sh).
DramSpec micron_2gb(DeviceWidth width, double speed_factor = 1.0);

/// Builds a representative 8Gb DDR4-2400-class device (16 banks in 4 bank
/// groups, tCCD_S/tCCD_L split, four-bank activation window) extrapolated
/// to the model's 1 GHz controller clock.  Not paper-faithful — see
/// docs/DRAM_SPECS.md for provenance.
DramSpec ddr4_8gb(DeviceWidth width, double speed_factor = 1.0);

/// Builds a representative 16Gb DDR5-3200-class device (32 banks in 8 bank
/// groups, two 32-bit sub-channels, same-bank refresh, on-die SECDED)
/// extrapolated to the model's 1 GHz controller clock.  Not paper-faithful
/// — see docs/DRAM_SPECS.md for provenance.
DramSpec ddr5_16gb(DeviceWidth width, double speed_factor = 1.0);

/// Builds the default device for a generation: micron_2gb / ddr4_8gb /
/// ddr5_16gb respectively.
DramSpec spec_for(Generation g, DeviceWidth width, double speed_factor = 1.0);

/// Recomputes the derived per-event energies from the device's current
/// timing and IDD values.  Call after editing currents (e.g. to model the
/// LOT-ECC5 mixed x16/x8 rank as scaled x16 chips).
void rederive_energy(DramSpec& device);

/// Reads the ECCSIM_DRAM environment variable (set by the bench front-end's
/// --dram flag).  Returns std::nullopt when unset; throws std::runtime_error
/// on an unrecognized value so typos cannot silently fall back to DDR3.
std::optional<Generation> generation_from_env();

}  // namespace eccsim::dram
