#!/bin/sh
# DDR3 bit-identity gate for the pluggable DRAM spec layer.
#
# Usage: ./scripts/ddr3_identity_check.sh [path-to-fig10_epi_quad]
#   default binary: build/bench/fig10_epi_quad
#
# The committed bench_results/sweep_quad.csv and fig10_epi_quad.csv were
# produced by the DDR3 model before device parameters moved behind the
# DramSpec interface; the refactor's contract is that the default (DDR3)
# path stays bit-identical.  This script deletes the sweep cache, reruns
# the full-fidelity quad sweep, and requires `git diff` to come back
# empty -- any divergence in timing, energy, scheduling, or the derived
# figure table fails the gate.  Runs the full 16x8-cell sweep (~15 s on
# a multicore CI runner; RUNNER_THREADS caps the fan-out).
set -e

bin=${1:-build/bench/fig10_epi_quad}
cd "$(dirname "$0")/.."
if [ ! -x "$bin" ]; then
  echo "usage: $0 [path-to-fig10_epi_quad]  ($bin: not an executable)" >&2
  exit 2
fi

echo "[ddr3-identity] re-simulating the full quad sweep" >&2
rm -f bench_results/sweep_quad.csv
env -u ECCSIM_SMOKE -u ECCSIM_QUICK -u ECCSIM_DRAM "$bin" >/dev/null

if ! git diff --exit-code -- bench_results/sweep_quad.csv \
    bench_results/fig10_epi_quad.csv >&2; then
  echo "[ddr3-identity] FAIL: DDR3 results drifted from the committed CSVs" >&2
  echo "[ddr3-identity] (the DramSpec refactor contract is bit-identity;" >&2
  echo "[ddr3-identity]  see docs/DRAM_SPECS.md)" >&2
  exit 1
fi
echo "[ddr3-identity] OK (DDR3 sweep is bit-identical to the committed CSVs)" >&2
