
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/codec.cpp" "src/ecc/CMakeFiles/ecc_schemes.dir/codec.cpp.o" "gcc" "src/ecc/CMakeFiles/ecc_schemes.dir/codec.cpp.o.d"
  "/root/repo/src/ecc/lotecc5_rs16.cpp" "src/ecc/CMakeFiles/ecc_schemes.dir/lotecc5_rs16.cpp.o" "gcc" "src/ecc/CMakeFiles/ecc_schemes.dir/lotecc5_rs16.cpp.o.d"
  "/root/repo/src/ecc/multiecc.cpp" "src/ecc/CMakeFiles/ecc_schemes.dir/multiecc.cpp.o" "gcc" "src/ecc/CMakeFiles/ecc_schemes.dir/multiecc.cpp.o.d"
  "/root/repo/src/ecc/scheme.cpp" "src/ecc/CMakeFiles/ecc_schemes.dir/scheme.cpp.o" "gcc" "src/ecc/CMakeFiles/ecc_schemes.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ecc_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ecc_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
