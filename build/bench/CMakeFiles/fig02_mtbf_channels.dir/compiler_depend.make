# Empty compiler generated dependencies file for fig02_mtbf_channels.
# This may be replaced when dependencies are built.
