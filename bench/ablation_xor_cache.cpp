// Ablation: the Sec. III-D XOR-cacheline optimization.  Without it, every
// application write (LLC dirty eviction) performs the full Eq. 1 parity
// update in memory: read the old line, read the parity line, write the
// parity line -- three extra accesses.  With it, updates compact in the
// LLC and only evictions of XOR cachelines touch memory (one read + one
// write per eviction).  This sweep measures parity-update traffic per
// instruction with the optimization on and a modeled "off" mode.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf(
      "Ablation -- XOR-cacheline compaction (Sec. III-D, Fig. 7)\n\n");
  const auto& rows = bench::sweep(ecc::SystemScale::kQuadEquivalent);
  Table t({"workload", "writebacks/KI", "parity traffic/KI (cached)",
           "parity traffic/KI (uncached = 3x writebacks)", "saving"});
  for (const auto& wl : bench::workload_order()) {
    const auto& r = bench::find(rows, "lotecc5+parity", wl);
    const double ki = static_cast<double>(r.instructions) / 1000.0;
    // Data writebacks = total writes minus ECC writes.
    const double wb = static_cast<double>(r.mem.writes - r.mem.ecc_writes);
    const double cached =
        static_cast<double>(r.mem.ecc_reads + r.mem.ecc_writes);
    const double uncached = 3.0 * wb;  // Step E without the optimization
    t.add_row({wl, Table::num(wb / ki, 2), Table::num(cached / ki, 2),
               Table::num(uncached / ki, 2),
               Table::num(uncached > 0 ? (1 - cached / uncached) * 100 : 0,
                          1) +
                   "%"});
  }
  bench::emit("ablation_xor_cache", t);
  std::printf(
      "Without the borrowed Multi-ECC caching technique, parity updates\n"
      "would roughly triple the write-path memory traffic; compaction\n"
      "eliminates the bulk of it (more for spatially-local workloads).\n");
  return 0;
}
