#include "fleet/spec.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "runner/json.hpp"

namespace eccsim::fleet {

namespace {

/// FNV-1a, the same primitive the MC checkpoint identity uses.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

double number_at(const runner::Json& obj, const std::string& key,
                 double fallback) {
  return obj.contains(key) ? obj.at(key).as_number() : fallback;
}

std::uint64_t count_at(const runner::Json& obj, const std::string& key,
                       std::uint64_t fallback) {
  if (!obj.contains(key)) return fallback;
  const double v = obj.at(key).as_number();
  if (v < 0 || v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    throw std::runtime_error("fleet spec: '" + key +
                             "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

std::string string_at(const runner::Json& obj, const std::string& key,
                      const std::string& fallback) {
  return obj.contains(key) ? obj.at(key).as_string() : fallback;
}

/// Rejects members outside `known`, so a typo ("chanels") fails loudly
/// instead of silently taking the default.
void reject_unknown(const runner::Json& obj,
                    const std::vector<std::string>& known,
                    const std::string& where) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::runtime_error("fleet spec: unknown member '" + key +
                               "' in " + where);
    }
  }
}

}  // namespace

std::uint64_t FleetSpec::total_nodes() const {
  std::uint64_t n = 0;
  for (const PoolSpec& p : pools) n += p.nodes;
  return n;
}

void FleetSpec::scale_nodes(std::uint64_t factor) {
  if (factor <= 1) return;
  for (PoolSpec& p : pools) p.nodes = std::max<std::uint64_t>(1, p.nodes / factor);
}

std::optional<GenFaultParams> gen_fault_params(const std::string& dram) {
  // Mirrors dram::spec_for's default devices (micron_2gb / ddr4_8gb /
  // ddr5_16gb); pinned against them in tests/fleet_test.cpp so this table
  // cannot drift from the spec layer it deliberately does not include.
  if (dram == "ddr3") return GenFaultParams{8, 0.0};
  if (dram == "ddr4") return GenFaultParams{16, 0.0};
  if (dram == "ddr5") return GenFaultParams{32, 0.9};
  return std::nullopt;
}

std::optional<SchemeClass> scheme_class(const std::string& ecc) {
  // The Table II scheme names (ecc::to_string spellings, pinned by
  // tests/fleet_test.cpp).  The tiered and chipkill schemes correct
  // within one rank; the + parity variants correct across channels and
  // fail on the Fig. 18 multi-channel coincidence instead.
  if (ecc == "chipkill36" || ecc == "chipkill18" || ecc == "lotecc5" ||
      ecc == "lotecc9" || ecc == "multiecc" || ecc == "raim") {
    return SchemeClass::kIsolated;
  }
  if (ecc == "lotecc5+parity" || ecc == "raim+parity") {
    return SchemeClass::kCrossParity;
  }
  return std::nullopt;
}

runner::Json to_json(const FleetSpec& spec) {
  runner::Json doc = runner::Json::object();
  doc.set("name", spec.name);
  doc.set("seed", spec.seed);
  doc.set("lifetime_hours", spec.lifetime_hours);
  doc.set("window_hours", spec.window_hours);
  runner::Json repair = runner::Json::object();
  repair.set("detect_hours", spec.repair.detect_hours);
  repair.set("repair_hours", spec.repair.repair_hours);
  repair.set("spares", static_cast<std::int64_t>(spec.repair.spares));
  doc.set("repair", std::move(repair));
  runner::Json pools = runner::Json::array();
  for (const PoolSpec& p : spec.pools) {
    runner::Json pool = runner::Json::object();
    pool.set("name", p.name);
    pool.set("nodes", p.nodes);
    pool.set("dram", p.dram);
    pool.set("ecc", p.ecc);
    pool.set("channels", static_cast<std::uint64_t>(p.channels));
    pool.set("ranks_per_channel",
             static_cast<std::uint64_t>(p.ranks_per_channel));
    pool.set("chips_per_rank", static_cast<std::uint64_t>(p.chips_per_rank));
    pool.set("fit_per_chip", p.fit_per_chip);
    pool.set("speed_factor", p.speed_factor);
    pools.push_back(std::move(pool));
  }
  doc.set("pools", std::move(pools));
  return doc;
}

FleetSpec spec_from_json(const runner::Json& doc) {
  if (!doc.is_object()) {
    throw std::runtime_error("fleet spec: document is not an object");
  }
  reject_unknown(doc,
                 {"name", "seed", "lifetime_hours", "window_hours", "repair",
                  "pools"},
                 "the fleet spec");
  FleetSpec spec;
  spec.name = string_at(doc, "name", spec.name);
  spec.seed = count_at(doc, "seed", spec.seed);
  spec.lifetime_hours = number_at(doc, "lifetime_hours", spec.lifetime_hours);
  spec.window_hours = number_at(doc, "window_hours", spec.window_hours);
  if (doc.contains("repair")) {
    const runner::Json& r = doc.at("repair");
    reject_unknown(r, {"detect_hours", "repair_hours", "spares"}, "repair");
    spec.repair.detect_hours =
        number_at(r, "detect_hours", spec.repair.detect_hours);
    spec.repair.repair_hours =
        number_at(r, "repair_hours", spec.repair.repair_hours);
    spec.repair.spares = static_cast<std::int64_t>(
        number_at(r, "spares", static_cast<double>(spec.repair.spares)));
  }
  if (!doc.contains("pools") || !doc.at("pools").is_array()) {
    throw std::runtime_error("fleet spec: missing 'pools' array");
  }
  for (const runner::Json& item : doc.at("pools").items()) {
    reject_unknown(item,
                   {"name", "nodes", "dram", "ecc", "channels",
                    "ranks_per_channel", "chips_per_rank", "fit_per_chip",
                    "speed_factor"},
                   "a pool");
    PoolSpec p;
    p.name = string_at(item, "name", "");
    p.nodes = count_at(item, "nodes", p.nodes);
    p.dram = string_at(item, "dram", p.dram);
    p.ecc = string_at(item, "ecc", p.ecc);
    p.channels = static_cast<unsigned>(count_at(item, "channels", p.channels));
    p.ranks_per_channel = static_cast<unsigned>(
        count_at(item, "ranks_per_channel", p.ranks_per_channel));
    p.chips_per_rank = static_cast<unsigned>(
        count_at(item, "chips_per_rank", p.chips_per_rank));
    p.fit_per_chip = number_at(item, "fit_per_chip", p.fit_per_chip);
    p.speed_factor = number_at(item, "speed_factor", p.speed_factor);
    spec.pools.push_back(std::move(p));
  }
  return spec;
}

std::string validate(const FleetSpec& spec) {
  if (spec.pools.empty()) return "fleet spec: no pools";
  if (!(spec.lifetime_hours > 0)) return "fleet spec: lifetime_hours <= 0";
  if (!(spec.window_hours > 0)) return "fleet spec: window_hours <= 0";
  if (spec.repair.detect_hours < 0 || spec.repair.repair_hours < 0) {
    return "fleet spec: negative repair policy durations";
  }
  for (const PoolSpec& p : spec.pools) {
    const std::string where = "pool '" + p.name + "'";
    if (p.name.empty()) return "fleet spec: a pool has no name";
    if (p.nodes == 0) return where + ": zero nodes";
    if (!gen_fault_params(p.dram)) {
      return where + ": unknown dram generation '" + p.dram +
             "' (expected ddr3, ddr4, or ddr5)";
    }
    if (!scheme_class(p.ecc)) {
      return where + ": unknown ecc scheme '" + p.ecc + "'";
    }
    if (p.channels < 2) return where + ": needs >= 2 channels";
    if (p.ranks_per_channel == 0 || p.chips_per_rank == 0) {
      return where + ": empty rank organization";
    }
    if (p.fit_per_chip < 0) return where + ": negative fit_per_chip";
    if (!(p.speed_factor > 0)) return where + ": speed_factor <= 0";
  }
  // The chunked engine and checkpoint envelope index systems as unsigned.
  if (spec.total_nodes() >
      static_cast<std::uint64_t>(std::numeric_limits<unsigned>::max())) {
    return "fleet spec: total node count exceeds the 2^32-1 budget";
  }
  return "";
}

std::string config_hash(const FleetSpec& spec) {
  const std::uint64_t h = fnv1a(to_json(spec).dump(0));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
  return buf;
}

}  // namespace eccsim::fleet
