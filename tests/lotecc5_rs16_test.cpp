// Tests for the Sec. VI-D modified LOT-ECC5 encoding: inter-chip RS
// detection (address-error coverage), chip-kill erasure correction, and
// capacity parity with plain LOT-ECC5.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/codec.hpp"
#include "ecc/lotecc5_rs16.hpp"

namespace eccsim::ecc {
namespace {

std::vector<std::uint8_t> random_line(Rng& rng) {
  std::vector<std::uint8_t> v(64);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
  return v;
}

TEST(LotEcc5Rs16, SameCapacityAsPlainLotEcc5) {
  const auto rs16 = make_lotecc5_rs16_codec();
  const auto plain = make_codec(SchemeId::kLotEcc5);
  EXPECT_EQ(rs16->detection_bytes(), plain->detection_bytes());
  EXPECT_EQ(rs16->correction_bytes(), plain->correction_bytes());
  EXPECT_EQ(rs16->data_bytes(), plain->data_bytes());
}

TEST(LotEcc5Rs16, CleanLinePasses) {
  const auto codec = make_lotecc5_rs16_codec();
  Rng rng(61);
  for (int i = 0; i < 50; ++i) {
    const auto line = random_line(rng);
    EXPECT_FALSE(codec->detect(line, codec->detection_bits(line)));
  }
}

TEST(LotEcc5Rs16, CorrectsFullChipKill) {
  const auto codec = make_lotecc5_rs16_codec();
  Rng rng(62);
  for (unsigned chip = 0; chip < 4; ++chip) {
    auto line = random_line(rng);
    const auto orig = line;
    const auto det = codec->detection_bits(line);
    const auto corr = codec->correction_bits(line);
    for (unsigned off : codec->chip_data_offsets(chip)) {
      line[off] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    const auto r = codec->correct(line, det, corr);
    ASSERT_TRUE(r.ok) << "chip " << chip;
    EXPECT_EQ(line, orig);
  }
}

TEST(LotEcc5Rs16, DetectsAddressErrorPlainLotEccMisses) {
  // The Sec. VI-D motivating case: a chip returns internally-consistent
  // data belonging to a different address.  Model: replace chip 1's share
  // of line A with its share of line B.  Plain LOT-ECC's intra-chip
  // checksum travels *with* the share, so tier 1 sees nothing wrong when
  // the checksum is fetched from the same wrong row -- here we conservatively
  // test the data-share swap, which the intra-chip checksum of the share
  // itself cannot flag if the swapped checksum comes along.  The RS16
  // code's inter-chip check symbol, computed across chips, always fires.
  const auto rs16 = make_lotecc5_rs16_codec();
  Rng rng(63);
  auto line_a = random_line(rng);
  const auto line_b = random_line(rng);
  const auto det_a = rs16->detection_bits(line_a);
  // Swap chip 1's share: bytes [16, 32).
  for (unsigned b = 16; b < 32; ++b) line_a[b] = line_b[b];
  EXPECT_TRUE(rs16->detect(line_a, det_a))
      << "inter-chip detection must catch the address error";
}

TEST(LotEcc5Rs16, CorrectsAddressErrorViaLocalization) {
  // After detection fires, the intra-chip checksums stored in the
  // correction bits localize the offending chip and erasure decoding
  // restores the true data.
  const auto codec = make_lotecc5_rs16_codec();
  Rng rng(64);
  auto line = random_line(rng);
  const auto orig = line;
  const auto det = codec->detection_bits(line);
  const auto corr = codec->correction_bits(line);
  const auto other = random_line(rng);
  for (unsigned b = 32; b < 48; ++b) line[b] = other[b];  // chip 2 swap
  const auto r = codec->correct(line, det, corr);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(line, orig);
  EXPECT_EQ(r.corrected_chips, 1u);
}

TEST(LotEcc5Rs16, TwoChipFailureRejected) {
  const auto codec = make_lotecc5_rs16_codec();
  Rng rng(65);
  auto line = random_line(rng);
  const auto det = codec->detection_bits(line);
  const auto corr = codec->correction_bits(line);
  line[0] ^= 0xFF;   // chip 0
  line[20] ^= 0xFF;  // chip 1
  EXPECT_FALSE(codec->correct(line, det, corr).ok);
}

TEST(LotEcc5Rs16, ErasureHintWorksWithoutChecksumMismatch) {
  // A chip marked bad a priori (erasure) is honored even when the
  // corruption happens to keep its intra-chip checksum valid.
  const auto codec = make_lotecc5_rs16_codec();
  Rng rng(66);
  auto line = random_line(rng);
  const auto orig = line;
  const auto det = codec->detection_bits(line);
  const auto corr = codec->correction_bits(line);
  for (unsigned off : codec->chip_data_offsets(3)) {
    line[off] ^= 0x3C;
  }
  const unsigned bad[] = {3u};
  const auto r = codec->correct(line, det, corr, bad);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(line, orig);
}

TEST(LotEcc5Rs16, SingleSymbolErrorCorrectedWithoutLocalization) {
  // A small (word-level) error that does not trip any intra-chip checksum
  // report still decodes through the unknown-error path (t = 1).
  const auto codec = make_lotecc5_rs16_codec();
  Rng rng(67);
  auto line = random_line(rng);
  const auto orig = line;
  const auto det = codec->detection_bits(line);
  auto corr = codec->correction_bits(line);
  // Flip one 16-bit symbol (chip 0, word 0) AND patch the stored intra-chip
  // checksum so localization stays silent -- the worst case for tier 1.
  line[0] ^= 0x55;
  line[1] ^= 0xAA;
  const auto fresh = codec->correction_bits(line);
  // Keep RS check symbols from the original, checksums from the corrupted
  // view (checksum bytes are [8,16) of the correction bits).
  for (unsigned i = 8; i < 16; ++i) corr[i] = fresh[i];
  const auto r = codec->correct(line, det, corr);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(line, orig);
}

}  // namespace
}  // namespace eccsim::ecc
