#include "runner/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "obs/run_info.hpp"
#include "runner/thread_pool.hpp"
#include "stats/scope.hpp"

namespace eccsim::runner {

namespace {

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) != "0";
}

}  // namespace

Report run_cells(const std::vector<Cell>& cells, const RunOptions& opts) {
  STATS_SCOPE("runner.run_cells");
  Report report;
  report.cells.resize(cells.size());
  const unsigned threads =
      opts.threads != 0 ? opts.threads : ThreadPool::default_thread_count();
  report.threads = threads;

  const auto sweep_start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(threads);
    std::mutex progress_mu;
    std::size_t done = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      pool.submit([&, i] {
        STATS_SCOPE("runner.cell");
        const auto t0 = std::chrono::steady_clock::now();
        report.cells[i].result = cells[i].work();
        const auto t1 = std::chrono::steady_clock::now();
        report.cells[i].wall_seconds =
            std::chrono::duration<double>(t1 - t0).count();
        if (opts.progress) {
          std::lock_guard<std::mutex> lock(progress_mu);
          opts.progress(++done, cells.size(), cells[i]);
        }
      });
    }
    pool.wait_idle();
  }
  const auto sweep_end = std::chrono::steady_clock::now();
  report.wall_seconds =
      std::chrono::duration<double>(sweep_end - sweep_start).count();
  for (const auto& c : report.cells) report.cell_seconds += c.wall_seconds;
  return report;
}

std::uint64_t substream_seed(std::uint64_t root_seed, std::uint64_t stream) {
  // SplitMix64 walks a Weyl sequence, so seeding it at root^f(stream) and
  // drawing once gives well-separated, reproducible substream seeds.
  SplitMix64 sm(root_seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return sm.next();
}

RunMetadata collect_metadata() {
  RunMetadata meta;
  meta.git_sha = obs::git_head_sha();
  meta.threads = ThreadPool::default_thread_count();
  meta.timestamp = obs::utc_timestamp();
  meta.quick = env_flag("ECCSIM_QUICK");
  meta.smoke = env_flag("ECCSIM_SMOKE");
  return meta;
}

Json to_json(const RunMetadata& meta) {
  Json j = Json::object();
  j.set("git_sha", meta.git_sha);
  j.set("threads", static_cast<std::uint64_t>(meta.threads));
  j.set("timestamp", meta.timestamp);
  j.set("quick", meta.quick);
  j.set("smoke", meta.smoke);
  return j;
}

Json to_json(const CellResult& cell) {
  const sim::RunResult& r = cell.result;
  Json j = Json::object();
  j.set("scheme", r.scheme);
  j.set("workload", r.workload);
  j.set("instructions", r.instructions);
  j.set("mem_cycles", r.mem_cycles);
  j.set("ipc", r.ipc);
  j.set("epi_pj", r.epi_pj);
  j.set("dynamic_epi_pj", r.dynamic_epi_pj);
  j.set("background_epi_pj", r.background_epi_pj);
  j.set("mapi", r.mapi);
  j.set("bandwidth_utilization", r.bandwidth_utilization);
  j.set("avg_read_latency", r.avg_read_latency);

  Json power = Json::object();
  power.set("activate_pj", r.mem.energy.activate_pj);
  power.set("read_pj", r.mem.energy.read_pj);
  power.set("write_pj", r.mem.energy.write_pj);
  power.set("refresh_pj", r.mem.energy.refresh_pj);
  power.set("background_pj", r.mem.energy.background_pj);
  power.set("total_pj", r.mem.energy.total_pj());
  j.set("energy", power);

  Json traffic = Json::object();
  traffic.set("reads", r.mem.reads);
  traffic.set("writes", r.mem.writes);
  traffic.set("ecc_reads", r.mem.ecc_reads);
  traffic.set("ecc_writes", r.mem.ecc_writes);
  j.set("traffic", traffic);

  Json llc = Json::object();
  llc.set("hits", r.llc.hits);
  llc.set("misses", r.llc.misses);
  llc.set("writebacks", r.llc.writebacks);
  j.set("llc", llc);

  j.set("wall_seconds", cell.wall_seconds);
  return j;
}

Json to_json(const Report& report) {
  Json j = Json::object();
  j.set("threads", static_cast<std::uint64_t>(report.threads));
  j.set("wall_seconds", report.wall_seconds);
  j.set("cell_seconds", report.cell_seconds);
  j.set("speedup", report.speedup());
  Json cells = Json::array();
  for (const auto& c : report.cells) cells.push_back(to_json(c));
  j.set("cells", cells);
  return j;
}

bool write_json(const std::string& path, const Json& doc) {
  return write_file(path, doc.dump() + "\n");
}

}  // namespace eccsim::runner
