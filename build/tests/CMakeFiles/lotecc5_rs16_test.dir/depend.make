# Empty dependencies file for lotecc5_rs16_test.
# This may be replaced when dependencies are built.
