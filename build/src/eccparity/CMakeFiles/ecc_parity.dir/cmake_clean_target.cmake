file(REMOVE_RECURSE
  "libecc_parity.a"
)
