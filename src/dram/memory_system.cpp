#include "dram/memory_system.hpp"

#include <stdexcept>

namespace eccsim::dram {

MemGeometry MemSystemConfig::geometry() const {
  MemGeometry g;
  g.channels = total_channels();
  g.sub_channels = device.sub_channels;
  g.ranks_per_channel = ranks_per_channel;
  g.banks_per_rank = device.banks;
  g.line_bytes = line_bytes;
  g.page_bytes = 4096;
  const std::uint64_t chip_bytes = device.capacity_mbit * 1024 * 1024 / 8;
  // Each sub-channel owns an even share of the physical rank's data chips
  // (DDR5: half), so per-effective-channel bank capacity shrinks with the
  // sub-channel count while system capacity stays put.
  const std::uint64_t bank_data_bytes =
      static_cast<std::uint64_t>(data_chips_per_rank / device.sub_channels) *
      chip_bytes / device.banks;
  g.rows_per_bank = bank_data_bytes / g.page_bytes;
  return g;
}

ChannelConfig MemorySystem::channel_config() const {
  ChannelConfig cc;
  cc.device = cfg_.device;
  cc.ranks = cfg_.ranks_per_channel;
  cc.banks = cfg_.device.banks;
  cc.chips_per_rank = static_cast<double>(cfg_.chips_per_rank) /
                      cfg_.device.sub_channels;
  cc.queue_depth = cfg_.queue_depth;
  cc.powerdown_enabled = cfg_.powerdown_enabled;
  cc.row_policy = cfg_.row_policy;
  cc.scheduler = cfg_.scheduler;
  return cc;
}

MemorySystem::MemorySystem(const MemSystemConfig& cfg)
    : cfg_(cfg), map_(cfg.geometry()) {
  const ChannelConfig cc = channel_config();
  const std::uint32_t n = cfg_.total_channels();
  channels_.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    channels_.emplace_back(cc);
  }
}

bool MemorySystem::enqueue_line(std::uint64_t line_index, bool is_write,
                                LineClass line_class, std::uint64_t id) {
  return enqueue_addr(map_.decode(line_index), is_write, line_class, id);
}

bool MemorySystem::enqueue_addr(const DramAddress& addr, bool is_write,
                                LineClass line_class, std::uint64_t id) {
  if (addr.channel >= channels_.size()) {
    throw std::out_of_range("MemorySystem::enqueue_addr: bad channel");
  }
  MemRequest req;
  req.id = id;
  req.addr = addr;
  req.is_write = is_write;
  req.line_class = line_class;
  req.enqueue_cycle = cycle_;
  return channels_[addr.channel].enqueue(req);
}

bool MemorySystem::can_accept_line(std::uint64_t line_index) const {
  return can_accept_channel(map_.decode(line_index).channel);
}

bool MemorySystem::can_accept_channel(std::uint32_t channel) const {
  return channels_.at(channel).can_accept();
}

void MemorySystem::tick() {
  ++cycle_;
  for (auto& ch : channels_) {
    ch.tick(cycle_, completions_);
  }
}

std::size_t MemorySystem::outstanding() const {
  std::size_t n = 0;
  for (const auto& ch : channels_) n += ch.pending() + ch.in_flight();
  return n;
}

namespace {
MemSystemStats aggregate(const std::vector<ChannelStats>& channels) {
  MemSystemStats s;
  std::uint64_t lat_sum = 0;
  for (const ChannelStats& cs : channels) {
    s.reads += cs.reads;
    s.writes += cs.writes;
    s.ecc_reads += cs.ecc_reads;
    s.ecc_writes += cs.ecc_writes;
    lat_sum += cs.read_latency_sum;
    s.energy.add(cs.energy);
  }
  s.avg_read_latency =
      s.reads ? static_cast<double>(lat_sum) / static_cast<double>(s.reads)
              : 0.0;
  return s;
}
}  // namespace

MemSystemStats MemorySystem::finalize() {
  if (!finalized_) {
    for (auto& ch : channels_) ch.finalize(cycle_);
    finalized_ = true;
  }
  std::vector<ChannelStats> per_channel;
  per_channel.reserve(channels_.size());
  for (const auto& ch : channels_) per_channel.push_back(ch.stats());
  return aggregate(per_channel);
}

MemSystemStats MemorySystem::peek_stats() const {
  // peek_stats() on each channel folds in the background/refresh energy a
  // finalize() at cycle_ would charge, so peeking mid-run is consistent
  // with the end-of-run report instead of lagging by the un-integrated
  // standby energy.  After finalize() the channels' markers have caught
  // up, so the extra integration is zero and the two reports agree.
  std::vector<ChannelStats> per_channel;
  per_channel.reserve(channels_.size());
  for (const auto& ch : channels_) per_channel.push_back(ch.peek_stats(cycle_));
  return aggregate(per_channel);
}

void MemorySystem::set_command_observer(std::uint32_t channel,
                                        CommandObserver* observer) {
  channels_.at(channel).set_observer(observer);
}

void MemorySystem::attach_stats(stats::Registry& reg, stats::Tracer* tracer) {
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    channels_[c].attach_stats(reg, "dram.ch" + std::to_string(c), tracer, c);
  }
}

}  // namespace eccsim::dram
