file(REMOVE_RECURSE
  "CMakeFiles/system_sim_demo.dir/system_sim_demo.cpp.o"
  "CMakeFiles/system_sim_demo.dir/system_sim_demo.cpp.o.d"
  "system_sim_demo"
  "system_sim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_sim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
