#!/bin/sh
# Dead-link check for the repo's Markdown docs.
#
# Usage: ./scripts/doc_link_check.sh
#
# Scans README.md and docs/*.md for relative Markdown links -- the
# [text](path) form, excluding http(s): and mailto: -- and fails if any
# target does not exist relative to the linking file.  Anchors (#...) are
# stripped before the existence check; anchor validity is not verified.
# Runs in CI so a doc rename or move cannot silently strand references.
set -e

cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # One link per line: grab every (...) that follows a ](, then strip the
  # wrapping, any anchor, and any "title" suffix.
  links=$(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' || true)
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target=${link%%#*}
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "[doc-link] $doc: dead link -> $link" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "[doc-link] FAIL: dead relative links found" >&2
  exit 1
fi
echo "[doc-link] OK (all relative links in README.md and docs/ resolve)" >&2
