#include "runner/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace eccsim::runner {

namespace {

// Identifies the current thread's home queue so submit() from inside a
// task pushes locally (the work-stealing fast path).
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    // Count the task before publishing it: once it is visible in a deque a
    // worker may pop it and decrement queued_, so the increment must come
    // first.
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++unfinished_;
    ++queued_;
    if (tl_pool == this) {
      target = tl_index;  // worker thread: push to own deque
    } else {
      target = next_queue_;
      next_queue_ = (next_queue_ + 1) % workers_.size();
    }
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->deque.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_take(std::size_t self, std::function<void()>& out) {
  {
    // Own deque: newest first, keeping the working set warm.
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.deque.empty()) {
      out = std::move(w.deque.back());
      w.deque.pop_back();
      return true;
    }
  }
  // Steal: oldest task of the first non-empty victim, scanning from the
  // next worker so load spreads evenly.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& v = *workers_[(self + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(v.mu);
    if (!v.deque.empty()) {
      out = std::move(v.deque.front());
      v.deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_pool = this;
  tl_index = self;
  for (;;) {
    std::function<void()> task;
    if (try_take(self, task)) {
      {
        std::lock_guard<std::mutex> lock(idle_mu_);
        --queued_;
      }
      task();
      std::lock_guard<std::mutex> lock(idle_mu_);
      if (--unfinished_ == 0) done_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    // queued_ is the lost-wakeup guard: a submit that landed between the
    // failed scan above and this wait leaves it nonzero, so we loop
    // instead of sleeping through the notification.
    work_cv_.wait(lock, [this] { return queued_ > 0 || stopping_; });
    if (stopping_ && queued_ == 0) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mu_);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

bool ThreadPool::on_worker_thread() { return tl_pool != nullptr; }

unsigned ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("RUNNER_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace eccsim::runner
