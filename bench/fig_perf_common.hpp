// Shared table builder for the normalized-performance (Figs. 14/15) and
// normalized-accesses (Figs. 16/17) figures: per workload, the metric of
// the parity schemes normalized to each baseline, plus geometric-mean
// rows (ratios aggregate with the geometric mean).
//
// Parallelism and JSON export are inherited from bench_common: sweep()
// fans the grid out over src/runner (bit-identical at any thread count)
// and emit() writes results/<name>.json alongside the CSV.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "fig_epi_common.hpp"

namespace eccsim::bench {

/// Builds a "ours / baseline" ratio table for `metric`.
inline void ratio_figure(
    const std::string& name, const std::string& title,
    ecc::SystemScale scale,
    const std::function<double(const sim::RunResult&)>& metric) {
  const auto& rows = sweep(scale);
  const auto comparisons = epi_comparisons();

  std::vector<std::string> header = {"workload", "bin"};
  for (const auto& c : comparisons) header.push_back(c.label);
  Table t(header);

  std::vector<std::vector<double>> acc(comparisons.size());
  for (const auto& wl : workload_order()) {
    std::vector<std::string> row = {wl, std::to_string(bin_of(wl))};
    for (std::size_t i = 0; i < comparisons.size(); ++i) {
      const auto& c = comparisons[i];
      const double ratio = metric(find(rows, c.ours, wl)) /
                           metric(find(rows, c.baseline, wl));
      row.push_back(Table::num(ratio, 3));
      acc[i].push_back(ratio);
    }
    t.add_row(row);
  }
  std::vector<std::string> gm_row = {"geomean", "-"};
  for (const auto& a : acc) gm_row.push_back(Table::num(geomean(a), 3));
  t.add_row(gm_row);

  std::printf("%s\n\n", title.c_str());
  emit(name, t);
}

}  // namespace eccsim::bench
