file(REMOVE_RECURSE
  "CMakeFiles/eccparity_layout_test.dir/eccparity_layout_test.cpp.o"
  "CMakeFiles/eccparity_layout_test.dir/eccparity_layout_test.cpp.o.d"
  "eccparity_layout_test"
  "eccparity_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccparity_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
