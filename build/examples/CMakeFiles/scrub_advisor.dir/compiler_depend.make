# Empty compiler generated dependencies file for scrub_advisor.
# This may be replaced when dependencies are built.
