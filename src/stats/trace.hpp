// Chrome trace-event exporter (the JSON Array / "JSON Object" format that
// chrome://tracing and Perfetto load natively).
//
// The tracer records DRAM command bursts and ECC-parity events as complete
// ("X") and instant ("i") events keyed by simulated memory-clock cycles
// (1 GHz => 1 cycle = 1 ns).  It is rate-limited: after `max_events`
// events it drops the rest and counts them, so a pathological run can
// never fill the disk.  Off by default; enabled per run via STATS_TRACE
// (see stats::Config).
//
// Single-owner like the Registry: one worker records, the main thread
// calls write() after the fan-out.  Event name/category strings must be
// string literals (the tracer stores the pointers, not copies).
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace eccsim::stats {

class Tracer {
 public:
  /// A small numeric event argument (rendered into the "args" object).
  struct Arg {
    const char* key;
    double value;
  };

  explicit Tracer(std::string path, std::uint64_t max_events = 200'000);

  const std::string& path() const { return path_; }

  /// Simulated clock in GHz; converts cycles to trace microseconds.
  void set_clock_ghz(double ghz) { clock_ghz_ = ghz; }

  /// Names the track (tid) in the trace viewer, e.g. "dram.ch0".
  void set_thread_name(std::uint32_t tid, std::string name);

  /// Complete event spanning [begin_cycle, end_cycle].
  void duration(const char* cat, const char* name, std::uint64_t begin_cycle,
                std::uint64_t end_cycle, std::uint32_t tid,
                std::initializer_list<Arg> args = {});

  /// Instant (zero-duration) event.
  void instant(const char* cat, const char* name, std::uint64_t cycle,
               std::uint32_t tid, std::initializer_list<Arg> args = {});

  std::uint64_t recorded() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Writes the trace file (creating parent directories); returns false
  /// on I/O failure.  Idempotent: later calls rewrite the same contents.
  bool write() const;

 private:
  struct Event {
    const char* cat;
    const char* name;
    char ph;  ///< 'X' complete, 'i' instant
    std::uint64_t ts_cycle;
    std::uint64_t dur_cycles;
    std::uint32_t tid;
    std::array<Arg, 2> args;
    unsigned nargs;
  };

  bool record(const Event& e);

  std::string path_;
  std::uint64_t max_events_;
  double clock_ghz_ = 1.0;
  std::vector<Event> events_;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
  std::uint64_t dropped_ = 0;
};

}  // namespace eccsim::stats
