// End-to-end integration: sampled device-fault histories driven through
// the functional ECC Parity machinery.
//
// This is the paper's whole story in one test: Poisson fault arrivals per
// chip (Sec. II), periodic scrubbing detects them (Sec. VI-C), parity
// reconstruction corrects them (Sec. III-A), error counters retire pages
// or mark bank pairs and materialize correction bits (Sec. III-B/C), and
// data integrity holds throughout -- except for the documented
// same-location multi-channel coincidence, which the Monte Carlo says is
// a once-per-tens-of-thousands-of-years event.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "ecc/codec.hpp"
#include "eccparity/manager.hpp"
#include "faults/injector.hpp"

namespace eccsim::faults {
namespace {

dram::MemGeometry small_geom() {
  dram::MemGeometry g;
  g.channels = 8;
  g.ranks_per_channel = 2;
  g.banks_per_rank = 8;
  g.rows_per_bank = 16;
  g.line_bytes = 64;
  return g;
}

std::map<std::uint64_t, std::vector<std::uint8_t>> populate(
    eccparity::EccParityManager& mgr, Rng& rng, std::uint64_t lines) {
  std::map<std::uint64_t, std::vector<std::uint8_t>> oracle;
  for (std::uint64_t l = 0; l < lines; ++l) {
    std::vector<std::uint8_t> v(64);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
    mgr.write_line(l, v);
    oracle[l] = std::move(v);
  }
  return oracle;
}

TEST(LifetimeIntegration, SingleEventsOfEveryTypeAreAbsorbed) {
  for (auto type : {FaultType::kBit, FaultType::kRow, FaultType::kColumn,
                    FaultType::kBank, FaultType::kMultiBank}) {
    eccparity::EccParityManager mgr(
        small_geom(), ecc::make_codec(ecc::SchemeId::kLotEcc5), 4);
    Rng rng(42);
    const auto oracle = populate(mgr, rng, 4096);

    FaultEvent e;
    e.type = type;
    e.channel = 2;
    e.rank = 1;
    e.chip = 0;
    e.time_hours = 100;
    FaultInjector injector(mgr, 256);
    const auto r = injector.inject(e);
    EXPECT_GT(r.lines_corrupted, 0u) << to_string(type);

    // The scrubber finds and fixes everything.
    const std::uint64_t found = mgr.scrub();
    EXPECT_GT(found, 0u) << to_string(type);
    EXPECT_EQ(mgr.stats().uncorrectable, 0u) << to_string(type);
    EXPECT_EQ(mgr.scrub(), 0u) << "second scrub must be clean";

    // Counter policy: large faults saturate the pair, small ones retire.
    if (saturates_error_counter(type)) {
      EXPECT_GT(mgr.health().faulty_pairs(), 0u) << to_string(type);
      EXPECT_GT(mgr.stats().lines_materialized, 0u);
    }
    EXPECT_GT(mgr.retired_page_count(), 0u) << to_string(type);

    // Full data audit.
    for (const auto& [line, expect] : oracle) {
      const auto rr = mgr.read_line(line);
      ASSERT_EQ(rr.data, expect) << to_string(type) << " line " << line;
    }
    EXPECT_EQ(mgr.verify_parity_invariant(), 0u) << to_string(type);
  }
}

TEST(LifetimeIntegration, SampledSevenYearHistorySurvives) {
  // Sample a (fault-dense, for test coverage) history and play it through
  // with scrubbing between events -- the paper's detection window model.
  eccparity::EccParityManager mgr(
      small_geom(), ecc::make_codec(ecc::SchemeId::kLotEcc5), 4);
  Rng rng(77);
  const auto oracle = populate(mgr, rng, 4096);

  SystemShape shape;
  shape.channels = 8;
  shape.ranks_per_channel = 2;
  shape.chips_per_rank = 4;  // match the codec's data chips
  // Inflate rates so a 7-year window yields a handful of events
  // (64 chips x 61344 h x 6000e-9/h ~ 24 events).
  const FitRates rates = ddr3_vendor_average().scaled_to(6000.0);
  Rng sample_rng(5);
  const auto events = sample_lifetime(shape, rates,
                                      7 * units::kHoursPerYear, sample_rng);
  ASSERT_GT(events.size(), 3u);
  ASSERT_LT(events.size(), 200u);

  FaultInjector injector(mgr, 128);
  const auto results = injector.inject_history(events);
  EXPECT_EQ(results.size(), events.size());

  // With scrubs between events, same-location cross-channel accumulation
  // is prevented; everything must have been corrected.
  EXPECT_EQ(mgr.stats().uncorrectable, 0u);
  for (const auto& [line, expect] : oracle) {
    const auto rr = mgr.read_line(line);
    ASSERT_EQ(rr.data, expect) << "line " << line;
  }
  EXPECT_EQ(mgr.verify_parity_invariant(), 0u);
}

TEST(LifetimeIntegration, MultiRankFaultMarksManyPairs) {
  eccparity::EccParityManager mgr(
      small_geom(), ecc::make_codec(ecc::SchemeId::kLotEcc5), 2);
  Rng rng(99);
  populate(mgr, rng, 4096);
  FaultEvent e;
  e.type = FaultType::kMultiRank;
  e.channel = 0;
  e.rank = 0;
  e.chip = 1;
  FaultInjector injector(mgr, 512);
  injector.inject(e);
  mgr.scrub();
  // Whole-channel damage: several pairs must be marked.
  EXPECT_GT(mgr.health().faulty_pairs(), 2u);
  EXPECT_EQ(mgr.stats().uncorrectable, 0u);
  EXPECT_EQ(mgr.verify_parity_invariant(), 0u);
}

TEST(LifetimeIntegration, InjectionIsDeterministic) {
  auto run_once = [] {
    eccparity::EccParityManager mgr(
        small_geom(), ecc::make_codec(ecc::SchemeId::kLotEcc5), 4);
    Rng rng(7);
    populate(mgr, rng, 1024);
    FaultEvent e;
    e.type = FaultType::kColumn;
    e.channel = 3;
    e.rank = 0;
    e.chip = 2;
    FaultInjector injector(mgr, 64);
    injector.inject(e);
    mgr.scrub();
    return mgr.stats().errors_detected;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace eccsim::faults
