# Empty compiler generated dependencies file for ecc_gf.
# This may be replaced when dependencies are built.
