// Tests for the parallel experiment runner (src/runner): the thread pool
// executes everything exactly once, fan-out results are bit-identical at
// any thread count (the property every figure binary now depends on), and
// the emitted JSON round-trips with all cells intact.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "runner/json.hpp"
#include "runner/runner.hpp"
#include "runner/thread_pool.hpp"

namespace eccsim::runner {
namespace {

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      for (int k = 0; k < 4; ++k) {
        pool.submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.wait_idle();  // no work yet: must not hang
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  setenv("RUNNER_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  setenv("RUNNER_THREADS", "0", 1);  // invalid: fall back to hardware
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  unsetenv("RUNNER_THREADS");
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

// --- run_cells determinism -------------------------------------------------

// A cheap deterministic stand-in for a SystemSim run: hashes a few RNG
// draws from the cell's substream into the metric fields.
std::vector<Cell> synthetic_cells(int n) {
  std::vector<Cell> cells;
  for (int i = 0; i < n; ++i) {
    Cell c;
    c.scheme = "scheme" + std::to_string(i % 4);
    c.workload = "wl" + std::to_string(i / 4);
    const std::uint64_t seed =
        substream_seed(7, static_cast<std::uint64_t>(i / 4));
    c.work = [seed, i] {
      Rng rng(seed);
      sim::RunResult r;
      r.scheme = "scheme" + std::to_string(i % 4);
      r.workload = "wl" + std::to_string(i / 4);
      for (int k = 0; k < 1000; ++k) r.instructions += rng.next_below(100);
      r.ipc = rng.next_double();
      r.epi_pj = rng.next_double() * 1000;
      r.mem.reads = rng.next();
      return r;
    };
    cells.push_back(std::move(c));
  }
  return cells;
}

bool same_result(const sim::RunResult& a, const sim::RunResult& b) {
  return a.scheme == b.scheme && a.workload == b.workload &&
         a.instructions == b.instructions && a.ipc == b.ipc &&
         a.epi_pj == b.epi_pj && a.mem.reads == b.mem.reads;
}

TEST(RunCellsTest, ParallelMatchesSerialBitExactly) {
  const auto cells = synthetic_cells(64);
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const Report a = run_cells(cells, serial);
  const Report b = run_cells(cells, parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  EXPECT_EQ(a.threads, 1u);
  EXPECT_EQ(b.threads, 4u);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_TRUE(same_result(a.cells[i].result, b.cells[i].result))
        << "cell " << i << " diverged between 1 and 4 threads";
  }
}

TEST(RunCellsTest, RealSweepCellsAreThreadCountInvariant) {
  // A miniature of the real bench sweep: 2 schemes x 2 workloads through
  // sim::SystemSim, 1 thread vs 4 threads, exact double equality.
  std::vector<Cell> cells;
  const ecc::SchemeId schemes[] = {ecc::SchemeId::kChipkill36,
                                   ecc::SchemeId::kLotEcc5Parity};
  const char* workloads[] = {"milc", "mcf"};
  for (std::uint64_t wi = 0; wi < 2; ++wi) {
    for (const auto id : schemes) {
      Cell c;
      c.scheme = ecc::to_string(id);
      c.workload = workloads[wi];
      const std::uint64_t seed = substream_seed(1, wi);
      c.work = [id, seed, name = std::string(workloads[wi])] {
        sim::SimOptions opts;
        opts.target_instructions = 20'000;
        opts.seed = seed;
        return sim::run_experiment(id, ecc::SystemScale::kDualEquivalent,
                                   name, opts);
      };
      cells.push_back(std::move(c));
    }
  }
  RunOptions serial;
  serial.threads = 1;
  RunOptions parallel;
  parallel.threads = 4;
  const Report a = run_cells(cells, serial);
  const Report b = run_cells(cells, parallel);
  ASSERT_EQ(a.cells.size(), 4u);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& ra = a.cells[i].result;
    const auto& rb = b.cells[i].result;
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.mem_cycles, rb.mem_cycles);
    EXPECT_EQ(ra.ipc, rb.ipc);  // exact: same arithmetic, same order
    EXPECT_EQ(ra.epi_pj, rb.epi_pj);
    EXPECT_EQ(ra.mapi, rb.mapi);
    EXPECT_EQ(ra.mem.reads, rb.mem.reads);
    EXPECT_EQ(ra.mem.writes, rb.mem.writes);
    EXPECT_EQ(ra.mem.ecc_reads, rb.mem.ecc_reads);
    EXPECT_EQ(ra.mem.ecc_writes, rb.mem.ecc_writes);
  }
}

TEST(RunCellsTest, ProgressReachesTotalAndTimingsArePopulated) {
  const auto cells = synthetic_cells(16);
  RunOptions opts;
  opts.threads = 4;
  std::size_t last_done = 0;
  opts.progress = [&](std::size_t done, std::size_t total, const Cell&) {
    EXPECT_EQ(total, 16u);
    EXPECT_GT(done, last_done);  // serialized, strictly increasing
    last_done = done;
  };
  const Report r = run_cells(cells, opts);
  EXPECT_EQ(last_done, 16u);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.cell_seconds, 0.0);
  EXPECT_GT(r.speedup(), 0.0);
}

TEST(RunnerTest, SubstreamSeedsAreStableAndDistinct) {
  EXPECT_EQ(substream_seed(1, 0), substream_seed(1, 0));
  EXPECT_NE(substream_seed(1, 0), substream_seed(1, 1));
  EXPECT_NE(substream_seed(1, 0), substream_seed(2, 0));
}

// --- Json ------------------------------------------------------------------

TEST(JsonTest, ScalarRoundTrip) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(Json::parse("\"a\\n\\\"b\\\"\"").as_string(), "a\n\"b\"");
}

TEST(JsonTest, DoublesRoundTripExactly) {
  const double values[] = {0.123456789012345678, 1e-300, 3.0,
                           1234567890.5, -0.0625};
  for (const double v : values) {
    EXPECT_EQ(Json::parse(Json(v).dump()).as_number(), v);
  }
}

TEST(JsonTest, StructuredRoundTripPreservesOrderAndValues) {
  Json obj = Json::object();
  obj.set("name", "sweep");
  obj.set("count", 128);
  obj.set("enabled", true);
  Json arr = Json::array();
  for (int i = 0; i < 3; ++i) arr.push_back(i * 1.5);
  obj.set("values", arr);
  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.dump(), obj.dump());
  EXPECT_EQ(back.members()[0].first, "name");
  EXPECT_EQ(back.members()[3].first, "values");
  EXPECT_EQ(back.at("values").items()[2].as_number(), 3.0);
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  // IEEE non-finite values have no JSON representation; emitting "inf" or
  // "nan" would make every downstream parser choke.  The writer degrades
  // them to null (the MtbfResult "no data" NaN sentinel relies on this).
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
  Json obj = Json::object();
  obj.set("mtbf", std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(Json::parse(obj.dump()).at("mtbf").is_null());
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

TEST(JsonTest, EscapesEveryControlCharacter) {
  // Every byte below 0x20 must be escaped -- a raw control character in
  // the output is invalid JSON (stats paths and workload names flow
  // through here unsanitized).
  for (int c = 0; c < 0x20; ++c) {
    const std::string s(1, static_cast<char>(c));
    const std::string text = Json(s).dump();
    for (char ch : text) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u)
          << "raw control byte " << c << " leaked into: " << text;
    }
    EXPECT_EQ(Json::parse(text).as_string(), s) << "control byte " << c;
  }
}

TEST(JsonTest, RandomStringsRoundTripExactly) {
  // Fuzz dump->parse over random byte strings drawn from the full
  // 7-bit range plus control characters (multi-byte UTF-8 passes through
  // untouched, so bytes < 0x80 are the interesting surface).
  eccsim::Rng rng(0xfadedfacadeULL);
  for (int iter = 0; iter < 500; ++iter) {
    std::string s;
    const std::uint64_t len = rng.next_below(40);
    for (std::uint64_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.next_below(0x80)));
    }
    const Json back = Json::parse(Json(s).dump());
    EXPECT_EQ(back.as_string(), s) << "iteration " << iter;
  }
}

// --- Report JSON -----------------------------------------------------------

TEST(ReportJsonTest, RoundTripCarriesAllCells) {
  const auto cells = synthetic_cells(32);
  RunOptions opts;
  opts.threads = 4;
  const Report report = run_cells(cells, opts);

  const std::string path = "/tmp/eccsim_runner_test_report.json";
  ASSERT_TRUE(write_json(path, to_json(report)));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const Json back = Json::parse(text);

  ASSERT_EQ(back.at("cells").size(), cells.size());
  EXPECT_EQ(back.at("threads").as_number(), 4.0);
  EXPECT_GT(back.at("wall_seconds").as_number(), 0.0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Json& c = back.at("cells").items()[i];
    EXPECT_EQ(c.at("scheme").as_string(), report.cells[i].result.scheme);
    EXPECT_EQ(c.at("workload").as_string(),
              report.cells[i].result.workload);
    EXPECT_EQ(c.at("ipc").as_number(), report.cells[i].result.ipc);
    EXPECT_EQ(c.at("epi_pj").as_number(), report.cells[i].result.epi_pj);
    EXPECT_EQ(c.at("traffic").at("reads").as_number(),
              static_cast<double>(report.cells[i].result.mem.reads));
  }
  std::filesystem::remove(path);
}

TEST(MetadataTest, CollectsGitShaAndThreads) {
  const RunMetadata meta = collect_metadata();
  EXPECT_GE(meta.threads, 1u);
  // In a checkout this is a 40-hex SHA; outside one it is "unknown".
  if (meta.git_sha != "unknown") {
    EXPECT_EQ(meta.git_sha.size(), 40u);
  }
  const Json j = to_json(meta);
  EXPECT_TRUE(j.contains("git_sha"));
  EXPECT_TRUE(j.contains("timestamp"));
}

}  // namespace
}  // namespace eccsim::runner
