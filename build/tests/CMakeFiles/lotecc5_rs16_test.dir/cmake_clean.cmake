file(REMOVE_RECURSE
  "CMakeFiles/lotecc5_rs16_test.dir/lotecc5_rs16_test.cpp.o"
  "CMakeFiles/lotecc5_rs16_test.dir/lotecc5_rs16_test.cpp.o.d"
  "lotecc5_rs16_test"
  "lotecc5_rs16_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotecc5_rs16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
