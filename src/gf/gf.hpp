// Galois-field arithmetic GF(2^m) for m = 8 and m = 16.
//
// These fields underlie every symbol-based code in the repository:
//   - GF(2^8): the 4-check-symbol Reed-Solomon code of 36-device commercial
//     chipkill correct, the 2-check-symbol code of the 18-device variant,
//     Multi-ECC's shared correction line, and RAIM's per-DIMM code.
//   - GF(2^16): the modified LOT-ECC5 inter-device code of Sec. VI-D, which
//     computes two 16-bit check symbols per word of eight 16-bit symbols.
//
// Arithmetic is table-driven (log/antilog).  Tables are built once at
// static-initialization time; all operations afterwards are lock-free reads
// and safe to use from any number of threads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace eccsim::gf {

/// Traits selecting the representation and primitive polynomial per field.
template <unsigned Bits>
struct FieldTraits;

template <>
struct FieldTraits<8> {
  using Symbol = std::uint8_t;
  using Wide = std::uint32_t;
  // x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the conventional RS-255 polynomial.
  static constexpr Wide kPrimitivePoly = 0x11D;
  static constexpr unsigned kOrder = 256;
};

template <>
struct FieldTraits<16> {
  using Symbol = std::uint16_t;
  using Wide = std::uint32_t;
  // x^16 + x^12 + x^3 + x + 1 (0x1100B), a standard primitive polynomial.
  static constexpr Wide kPrimitivePoly = 0x1100B;
  static constexpr unsigned kOrder = 65536;
};

/// GF(2^Bits) arithmetic.  All member functions are static; the log/exp
/// tables live in a function-local singleton so construction is thread-safe
/// under C++11 magic statics.
template <unsigned Bits>
class Field {
 public:
  using Traits = FieldTraits<Bits>;
  using Symbol = typename Traits::Symbol;
  static constexpr unsigned kOrder = Traits::kOrder;

  /// Addition and subtraction coincide in characteristic 2.
  static Symbol add(Symbol a, Symbol b) { return a ^ b; }

  static Symbol mul(Symbol a, Symbol b) {
    if (a == 0 || b == 0) return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + t.log[b]];
  }

  static Symbol div(Symbol a, Symbol b);

  /// Multiplicative inverse; b must be nonzero.
  static Symbol inv(Symbol b) { return div(1, b); }

  /// alpha^power for the field generator alpha (power may exceed the group
  /// order; it is reduced mod 2^Bits - 1).
  static Symbol alpha_pow(unsigned power) {
    const Tables& t = tables();
    return t.exp[power % (kOrder - 1)];
  }

  /// Discrete log base alpha; x must be nonzero.
  static unsigned log(Symbol x);

  /// a^e by log arithmetic (a != 0; 0^0 == 1 by convention, 0^e == 0).
  static Symbol pow(Symbol a, unsigned e);

 private:
  struct Tables {
    // exp has doubled length so mul can skip the modular reduction.
    std::vector<Symbol> exp;
    std::vector<unsigned> log;
    Tables();
  };
  static const Tables& tables() {
    static const Tables t;
    return t;
  }
};

using GF256 = Field<8>;
using GF65536 = Field<16>;

extern template class Field<8>;
extern template class Field<16>;

}  // namespace eccsim::gf
