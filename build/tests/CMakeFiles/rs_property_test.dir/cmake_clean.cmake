file(REMOVE_RECURSE
  "CMakeFiles/rs_property_test.dir/rs_property_test.cpp.o"
  "CMakeFiles/rs_property_test.dir/rs_property_test.cpp.o.d"
  "rs_property_test"
  "rs_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
