#include "gf/rs.hpp"

#include <algorithm>
#include <stdexcept>

#include "gf/kernels.hpp"
#include "stats/scope.hpp"

namespace eccsim::gf {

template <unsigned Bits>
ReedSolomon<Bits>::ReedSolomon(unsigned n, unsigned k) : n_(n), k_(k) {
  if (k == 0 || k >= n || n > F::kOrder - 1) {
    throw std::invalid_argument("ReedSolomon: require 1 <= k < n <= q-1");
  }
  // g(x) = prod_{j=1}^{2t} (x - alpha^j)
  generator_ = {1};
  for (unsigned j = 1; j <= n - k; ++j) {
    const Symbol root = F::alpha_pow(j);
    Poly next(generator_.size() + 1, 0);
    for (std::size_t i = 0; i < generator_.size(); ++i) {
      // (x + root) * g  (note: minus == plus in GF(2^m))
      next[i + 1] = F::add(next[i + 1], generator_[i]);
      next[i] = F::add(next[i], F::mul(generator_[i], root));
    }
    generator_ = std::move(next);
  }

  if constexpr (Bits == 8) {
    // Compile the generator-matrix products for the bulk kernels (see
    // rs.hpp).  Built once per code instance; the per-call fast paths
    // are a single GfMatApply each.
    const unsigned two_t = n_ - k_;
    std::vector<std::uint8_t> enc_rows(static_cast<std::size_t>(k_) * two_t,
                                       0);
    for (unsigned i = 0; i < k_; ++i) {
      Poly xi(two_t + i + 1, 0);
      xi[two_t + i] = 1;  // x^{2t+i}
      Poly rem = poly_mod(std::move(xi), generator_);
      for (std::size_t j = 0; j < rem.size(); ++j) {
        enc_rows[static_cast<std::size_t>(i) * two_t + j] = rem[j];
      }
    }
    enc_map_ = GfMatApply(enc_rows.data(), k_, two_t);
    std::vector<std::uint8_t> syn_rows(static_cast<std::size_t>(n_) * two_t,
                                       0);
    for (unsigned i = 0; i < n_; ++i) {
      for (unsigned j = 0; j < two_t; ++j) {
        syn_rows[static_cast<std::size_t>(i) * two_t + j] =
            F::alpha_pow(i * (j + 1));
      }
    }
    syn_map_ = GfMatApply(syn_rows.data(), n_, two_t);
  }
}

template <unsigned Bits>
int ReedSolomon<Bits>::poly_deg(const Poly& p) {
  for (int i = static_cast<int>(p.size()) - 1; i >= 0; --i) {
    if (p[static_cast<std::size_t>(i)] != 0) return i;
  }
  return -1;
}

template <unsigned Bits>
void ReedSolomon<Bits>::poly_trim(Poly& p) {
  p.resize(static_cast<std::size_t>(poly_deg(p) + 1));
}

template <unsigned Bits>
typename ReedSolomon<Bits>::Poly ReedSolomon<Bits>::poly_mul(const Poly& a,
                                                             const Poly& b) {
  if (a.empty() || b.empty()) return {};
  Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = F::add(out[i + j], F::mul(a[i], b[j]));
    }
  }
  return out;
}

template <unsigned Bits>
typename ReedSolomon<Bits>::Poly ReedSolomon<Bits>::poly_add(const Poly& a,
                                                             const Poly& b) {
  Poly out(std::max(a.size(), b.size()), 0);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = F::add(out[i], b[i]);
  return out;
}

template <unsigned Bits>
typename ReedSolomon<Bits>::Poly ReedSolomon<Bits>::poly_mod(Poly a,
                                                             const Poly& b) {
  const int db = poly_deg(b);
  if (db < 0) throw std::domain_error("poly_mod by zero polynomial");
  const Symbol lead_inv = F::inv(b[static_cast<std::size_t>(db)]);
  for (int da = poly_deg(a); da >= db; da = poly_deg(a)) {
    const Symbol factor =
        F::mul(a[static_cast<std::size_t>(da)], lead_inv);
    const int shift = da - db;
    for (int i = 0; i <= db; ++i) {
      a[static_cast<std::size_t>(i + shift)] =
          F::add(a[static_cast<std::size_t>(i + shift)],
                 F::mul(factor, b[static_cast<std::size_t>(i)]));
    }
  }
  poly_trim(a);
  return a;
}

template <unsigned Bits>
typename ReedSolomon<Bits>::Symbol ReedSolomon<Bits>::poly_eval(const Poly& p,
                                                                Symbol x) {
  Symbol acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    acc = F::add(F::mul(acc, x), p[i]);
  }
  return acc;
}

template <unsigned Bits>
std::vector<typename ReedSolomon<Bits>::Symbol> ReedSolomon<Bits>::parity(
    std::span<const Symbol> data) const {
  if (data.size() != k_) {
    throw std::invalid_argument("ReedSolomon::parity: data size != k");
  }
  STATS_SCOPE("codec.rs_encode");
  // Systematic encoding: c(x) = d(x) * x^{2t} + (d(x) * x^{2t} mod g(x)).
  if constexpr (Bits == 8) {
    // parity = xor_i data[i] * (x^{2t+i} mod g): one precompiled matrix
    // apply.  The scalar kernel keeps the original polynomial-division
    // path below as the oracle.
    if (active_kernel() != Kernel::kScalar) {
      std::vector<Symbol> rem(n_ - k_, 0);
      enc_map_.apply(data.data(), k_, rem.data());
      return rem;
    }
  }
  Poly shifted(n_, 0);
  for (unsigned i = 0; i < k_; ++i) shifted[n_ - k_ + i] = data[i];
  Poly rem = poly_mod(std::move(shifted), generator_);
  rem.resize(n_ - k_, 0);
  return rem;
}

template <unsigned Bits>
std::vector<typename ReedSolomon<Bits>::Symbol> ReedSolomon<Bits>::encode(
    std::span<const Symbol> data) const {
  std::vector<Symbol> cw = parity(data);
  cw.resize(n_);
  std::copy(data.begin(), data.end(), cw.begin() + (n_ - k_));
  return cw;
}

template <unsigned Bits>
typename ReedSolomon<Bits>::Poly ReedSolomon<Bits>::syndromes(
    std::span<const Symbol> codeword) const {
  Poly s(n_ - k_, 0);
  if constexpr (Bits == 8) {
    // S_j = xor_i codeword[i] * alpha^{i*j}: the same matrix shape as
    // encoding, with the codeword bytes as the coefficients.
    if (active_kernel() != Kernel::kScalar && codeword.size() == n_) {
      syn_map_.apply(codeword.data(), n_, s.data());
      return s;
    }
  }
  for (unsigned j = 1; j <= n_ - k_; ++j) {
    Symbol acc = 0;
    const Symbol x = F::alpha_pow(j);
    for (std::size_t i = codeword.size(); i-- > 0;) {
      acc = F::add(F::mul(acc, x), codeword[i]);
    }
    s[j - 1] = acc;
  }
  return s;
}

template <unsigned Bits>
bool ReedSolomon<Bits>::check(std::span<const Symbol> codeword) const {
  if (codeword.size() != n_) {
    throw std::invalid_argument("ReedSolomon::check: codeword size != n");
  }
  const Poly s = syndromes(codeword);
  return std::all_of(s.begin(), s.end(), [](Symbol v) { return v == 0; });
}

template <unsigned Bits>
RsDecodeResult ReedSolomon<Bits>::decode(
    std::span<Symbol> codeword, std::span<const unsigned> erasures) const {
  if (codeword.size() != n_) {
    throw std::invalid_argument("ReedSolomon::decode: codeword size != n");
  }
  STATS_SCOPE("codec.rs_decode");
  RsDecodeResult result;
  const unsigned two_t = n_ - k_;

  // Validate and deduplicate the erasure list up front.  A repeated
  // position must count once: building Gamma with a squared factor would
  // inflate the locator degree and could turn a correctable pattern into
  // a miscorrection.  The bitmap doubles as the O(1) was-this-an-erasure
  // lookup in the Chien loop below.
  std::vector<std::uint8_t> erased(n_, 0);
  std::vector<unsigned> unique_erasures;
  unique_erasures.reserve(erasures.size());
  for (unsigned pos : erasures) {
    if (pos >= n_) throw std::invalid_argument("erasure position out of range");
    if (erased[pos]) continue;
    erased[pos] = 1;
    unique_erasures.push_back(pos);
  }

  Poly s = syndromes(codeword);
  const bool syndrome_zero =
      std::all_of(s.begin(), s.end(), [](Symbol v) { return v == 0; });
  if (syndrome_zero) {
    // Either error-free, or the erased positions happen to hold values that
    // form a valid codeword (then nothing needs fixing).  This must be
    // decided before the capability bound: a clean codeword is clean no
    // matter how many erasures the caller over-declared.
    result.ok = true;
    return result;
  }
  result.detected_error = true;
  if (unique_erasures.size() > two_t) return result;  // beyond code capability

  // Erasure locator Gamma(x) = prod (1 + alpha^{pos} x).
  Poly gamma = {1};
  for (unsigned pos : unique_erasures) {
    gamma = poly_mul(gamma, Poly{1, F::alpha_pow(pos)});
  }

  // Modified syndrome Xi(x) = Gamma(x) * S(x) mod x^{2t}.
  Poly xi = poly_mul(gamma, s);
  if (xi.size() > two_t) xi.resize(two_t);
  poly_trim(xi);

  // Sugiyama: run extended Euclid on (x^{2t}, Xi) until
  // deg(remainder) < (2t + e) / 2.  The Bezout coefficient of Xi is the
  // error locator Lambda; the remainder is the evaluator Omega.
  const int target_deg = static_cast<int>(
      (two_t + static_cast<unsigned>(unique_erasures.size())) / 2);
  Poly r_prev(two_t + 1, 0);
  r_prev[two_t] = 1;  // x^{2t}
  Poly r_cur = xi;
  Poly t_prev = {};   // 0
  Poly t_cur = {1};
  while (poly_deg(r_cur) >= target_deg) {
    if (poly_deg(r_cur) < 0) break;  // Xi == 0: only erasures present
    // Polynomial division r_prev = q * r_cur + r_next, tracking t.
    Poly q;
    {
      Poly a = r_prev;
      const int db = poly_deg(r_cur);
      const Symbol lead_inv =
          F::inv(r_cur[static_cast<std::size_t>(db)]);
      q.assign(static_cast<std::size_t>(
                   std::max(poly_deg(a) - db + 1, 1)),
               0);
      for (int da = poly_deg(a); da >= db; da = poly_deg(a)) {
        const Symbol factor =
            F::mul(a[static_cast<std::size_t>(da)], lead_inv);
        const int shift = da - db;
        q[static_cast<std::size_t>(shift)] = factor;
        for (int i = 0; i <= db; ++i) {
          a[static_cast<std::size_t>(i + shift)] =
              F::add(a[static_cast<std::size_t>(i + shift)],
                     F::mul(factor, r_cur[static_cast<std::size_t>(i)]));
        }
      }
      poly_trim(a);
      r_prev = std::move(a);  // r_next
    }
    std::swap(r_prev, r_cur);  // (r_cur, r_next)
    Poly t_next = poly_add(t_prev, poly_mul(q, t_cur));
    t_prev = std::move(t_cur);
    t_cur = std::move(t_next);
  }

  Poly lambda = t_cur;
  Poly omega = r_cur;

  // Normalize so that Lambda(0) = 1 (required by Forney's formula).
  if (lambda.empty() || lambda[0] == 0) return result;  // decode failure
  const Symbol norm = F::inv(lambda[0]);
  for (auto& c : lambda) c = F::mul(c, norm);
  for (auto& c : omega) c = F::mul(c, norm);

  // Full locator Psi = Lambda * Gamma covers errors and erasures alike.
  Poly psi = poly_mul(lambda, gamma);
  poly_trim(psi);
  const int psi_deg = poly_deg(psi);
  if (psi_deg < 0) return result;

  // Formal derivative of Psi: in GF(2^m) even-power terms vanish.
  Poly psi_deriv(psi.size() > 1 ? psi.size() - 1 : 0, 0);
  for (std::size_t i = 1; i < psi.size(); i += 2) {
    psi_deriv[i - 1] = psi[i];
  }

  // Chien search: position p is corrupt iff Psi(alpha^{-p}) == 0.  The
  // loop below is the only writer of `codeword`, so snapshotting here is
  // what lets every later failure return restore the caller's input.
  const std::vector<Symbol> snapshot(codeword.begin(), codeword.end());
  const auto restore = [&] {
    std::copy(snapshot.begin(), snapshot.end(), codeword.begin());
  };
  unsigned found = 0;
  unsigned fixed_errors = 0;
  unsigned fixed_erasures = 0;
  for (unsigned p = 0; p < n_; ++p) {
    const Symbol x_inv = F::alpha_pow((F::kOrder - 1 - p) % (F::kOrder - 1));
    if (poly_eval(psi, x_inv) != 0) continue;
    ++found;
    const Symbol denom = poly_eval(psi_deriv, x_inv);
    if (denom == 0) {  // repeated root: decode failure
      restore();
      return result;
    }
    // Forney (b = 1 convention): magnitude = Omega(X^-1) / Psi'(X^-1).
    const Symbol mag = F::div(poly_eval(omega, x_inv), denom);
    codeword[p] = F::add(codeword[p], mag);
    if (erased[p]) ++fixed_erasures;
    else ++fixed_errors;
  }
  if (found != static_cast<unsigned>(psi_deg)) {  // failure
    restore();
    return result;
  }

  // Verify: recompute syndromes on the corrected word.
  if (!check(codeword)) {
    restore();
    return result;
  }
  result.ok = true;
  result.corrected_errors = fixed_errors;
  result.corrected_erasures = fixed_erasures;
  return result;
}

template class ReedSolomon<8>;
template class ReedSolomon<16>;

}  // namespace eccsim::gf
