// Capacity explorer: an interactive-style CLI over the analytic capacity
// model.  Shows, for any underlying ECC and channel count, where ECC
// Parity's storage goes: detection bits, parity lines, reserved rows,
// and the end-of-life growth from materialized correction bits.
//
// Usage:
//   ./build/examples/capacity_explorer            # default sweep
//   ./build/examples/capacity_explorer lotecc5 8  # one scheme, N channels
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "ecc/scheme.hpp"
#include "eccparity/layout.hpp"

using namespace eccsim;

namespace {

ecc::SchemeId parse_scheme(const std::string& name) {
  for (const auto id : ecc::all_schemes()) {
    if (ecc::to_string(id) == name) return id;
  }
  std::fprintf(stderr, "unknown scheme '%s'; try one of:", name.c_str());
  for (const auto id : ecc::all_schemes()) {
    std::fprintf(stderr, " %s", ecc::to_string(id).c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(1);
}

void explain(ecc::SchemeId id, std::uint32_t channels) {
  ecc::SchemeDesc d = ecc::make_scheme(id, ecc::SystemScale::kQuadEquivalent);
  d.channels = channels;
  if (d.uses_ecc_parity) d.ecc_line_coverage = 4 * (channels - 1);

  std::printf("%s with %u channels\n", d.name.c_str(), channels);
  std::printf("  rank: %u chips (%u data), %uB lines\n", d.chips_per_rank,
              d.data_chips_per_rank, d.line_bytes);
  std::printf("  detection bits   : %s of data (always stored per channel)\n",
              Table::pct(d.detection_overhead).c_str());
  std::printf("  correction ratio : %s of data (R)\n",
              Table::pct(d.correction_ratio).c_str());
  if (d.uses_ecc_parity) {
    const double parity_share = (1.0 + d.detection_overhead) *
                                d.correction_ratio / (channels - 1);
    std::printf("  parity lines     : (1+%.1f%%) * R / (N-1) = %s\n",
                d.detection_overhead * 100, Table::pct(parity_share).c_str());
    std::printf("  total            : %s\n",
                Table::pct(d.capacity_overhead()).c_str());
    std::printf("  EOL @0.4%% faulty : %s\n",
                Table::pct(d.capacity_overhead_eol(0.004)).c_str());
    const unsigned corr_bytes =
        static_cast<unsigned>(d.correction_ratio * d.line_bytes);
    dram::MemGeometry geom;
    geom.channels = channels;
    geom.ranks_per_channel = d.ranks_per_channel;
    geom.rows_per_bank = 32768;
    geom.line_bytes = d.line_bytes;
    eccparity::ParityLayout layout(geom, corr_bytes);
    std::printf("  reserved rows    : %llu per 32768-row bank\n",
                (unsigned long long)layout.reserved_rows_per_bank());
    std::printf("  XOR line covers  : %u data lines\n",
                layout.xor_coverage());
  } else {
    std::printf("  total            : %s (stored per channel; ECC Parity\n"
                "                     would shrink the correction part by\n"
                "                     a factor of N-1)\n",
                Table::pct(d.capacity_overhead()).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3) {
    explain(parse_scheme(argv[1]),
            static_cast<std::uint32_t>(std::atoi(argv[2])));
    return 0;
  }
  std::printf("ECC Parity capacity explorer\n");
  std::printf("(pass `<scheme> <channels>` for a single configuration)\n\n");
  Table t({"scheme \\ channels", "2", "4", "8", "16"});
  for (const auto id :
       {ecc::SchemeId::kLotEcc5Parity, ecc::SchemeId::kRaimParity}) {
    std::vector<std::string> row = {ecc::to_string(id)};
    for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
      ecc::SchemeDesc d =
          ecc::make_scheme(id, ecc::SystemScale::kQuadEquivalent);
      d.channels = n;
      row.push_back(Table::pct(d.capacity_overhead()));
    }
    t.add_row(row);
  }
  for (const auto id :
       {ecc::SchemeId::kLotEcc5, ecc::SchemeId::kRaim,
        ecc::SchemeId::kChipkill36}) {
    const auto d = ecc::make_scheme(id, ecc::SystemScale::kQuadEquivalent);
    t.add_row({ecc::to_string(id), Table::pct(d.capacity_overhead()),
               Table::pct(d.capacity_overhead()),
               Table::pct(d.capacity_overhead()),
               Table::pct(d.capacity_overhead())});
  }
  std::printf("%s\n", t.str().c_str());
  explain(ecc::SchemeId::kLotEcc5Parity, 8);
  return 0;
}
