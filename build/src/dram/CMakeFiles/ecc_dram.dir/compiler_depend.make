# Empty compiler generated dependencies file for ecc_dram.
# This may be replaced when dependencies are built.
