// ECC Parity layout, health-table, and codec invariant checkers
// (verification layer, Sec. III of the paper).
//
// Each checker independently re-verifies a structural property the ECC
// Parity mechanism relies on, from the public interfaces alone:
//
//   check_address_map     the linear-line <-> DramAddress mapping is a
//                         bijection (decode/encode round-trip both ways)
//   check_parity_layout   every data line belongs to exactly one parity
//                         group and appears in that group's member list
//                         exactly once; group members occupy pairwise
//                         distinct channels; the parity line's channel is
//                         distinct from every member's channel and its
//                         address never coincides with a member's address
//                         (no data/parity overlap within a group -- the
//                         single-channel-failure guarantee of Sec. III-A);
//                         parity rows stay inside the reserved window and
//                         the reserved-row count satisfies the
//                         (1 + 12.5%) * R / (N-1) bound of Sec. III-E;
//                         XOR-cacheline keys are namespaced away from line
//                         indices and constant exactly on slot quads
//   check_health_table    bank-pair error bookkeeping follows the Fig. 6
//                         state machine: below-threshold errors retire
//                         pages with a monotone counter, the threshold-th
//                         error marks the pair faulty exactly once, and
//                         the faulty state is absorbing
//   check_rs_roundtrip    the RS codec corrects every (errors, erasures)
//                         load with 2*nu + e <= 2t back to the original
//                         codeword under randomized corruption
//
// All checkers are deterministic (fixed seeds), return a CheckResult
// instead of asserting, and are run together by the check_invariants
// binary (also registered in ctest).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/address_map.hpp"

namespace eccsim::check {

/// Outcome of one invariant sweep: how many individual checks ran and the
/// descriptions of any that failed.
struct CheckResult {
  std::string name;
  std::uint64_t checks = 0;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  /// Folds `other` into this result, prefixing its failures with its name.
  void merge(const CheckResult& other);
};

/// AddressMap bijection.  Exhaustive when total_data_lines <= max_exhaustive,
/// else a deterministic sample of `samples` lines plus the boundary lines.
CheckResult check_address_map(const dram::MemGeometry& geom,
                              std::uint64_t samples = 200'000,
                              std::uint64_t max_exhaustive = 1'000'000);

/// ParityLayout group/bijection/channel-disjointness invariants, sampled
/// the same way (`corr_bytes` as in ParityLayout's constructor).
CheckResult check_parity_layout(const dram::MemGeometry& geom,
                                unsigned corr_bytes,
                                std::uint64_t samples = 100'000,
                                std::uint64_t max_exhaustive = 500'000);

/// BankHealthTable Fig. 6 transition discipline at the given threshold.
CheckResult check_health_table(unsigned threshold = 4);

/// RS round-trip under random corruption for the paper's code shapes:
/// (36,32) and (18,16) over GF(2^8), (10,8) over GF(2^16).
CheckResult check_rs_roundtrip(unsigned trials_per_load = 20,
                               std::uint64_t seed = 0xEC0DEC);

/// Every invariant on every paper geometry (quad/dual equivalents across
/// the evaluated correction ratios).  `thorough` raises the sample counts.
CheckResult check_all(bool thorough);

}  // namespace eccsim::check
