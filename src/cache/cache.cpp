#include "cache/cache.hpp"

#include <bit>
#include <stdexcept>

namespace eccsim::cache {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (cfg_.ways == 0 || cfg_.line_bytes == 0) {
    throw std::invalid_argument("Cache: ways/line_bytes must be nonzero");
  }
  const std::uint64_t lines = cfg_.size_bytes / cfg_.line_bytes;
  if (lines % cfg_.ways != 0) {
    throw std::invalid_argument("Cache: size not divisible by ways");
  }
  num_sets_ = static_cast<std::uint32_t>(lines / cfg_.ways);
  if (!std::has_single_bit(num_sets_)) {
    throw std::invalid_argument("Cache: set count must be a power of two");
  }
  sets_.assign(num_sets_, std::vector<Line>(cfg_.ways));
}

std::uint32_t Cache::set_index(std::uint64_t line_addr) const {
  // Mix upper bits into the index so that the disjoint address namespaces
  // used for ECC/XOR lines do not all collide into the same sets.
  std::uint64_t h = line_addr * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return static_cast<std::uint32_t>(h & (num_sets_ - 1));
}

Cache::Line* Cache::find(std::uint64_t line_addr) {
  auto& set = sets_[set_index(line_addr)];
  for (auto& line : set) {
    if (line.valid && line.addr == line_addr) return &line;
  }
  return nullptr;
}

const Cache::Line* Cache::find(std::uint64_t line_addr) const {
  const auto& set = sets_[set_index(line_addr)];
  for (const auto& line : set) {
    if (line.valid && line.addr == line_addr) return &line;
  }
  return nullptr;
}

AccessResult Cache::access(std::uint64_t line_addr, bool is_write,
                           LineKind kind) {
  ++tick_;
  AccessResult result;
  if (Line* line = find(line_addr)) {
    result.hit = true;
    line->lru = tick_;
    line->dirty = line->dirty || is_write;
    line->kind = kind;
    ++stats_.hits;
    return result;
  }
  ++stats_.misses;

  // Miss: allocate, evicting the LRU way.
  auto& set = sets_[set_index(line_addr)];
  Line* victim = &set[0];
  for (auto& line : set) {
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  if (victim->valid && victim->dirty) {
    result.writeback = true;
    result.victim_addr = victim->addr;
    result.victim_kind = victim->kind;
    ++stats_.writebacks;
  }
  victim->addr = line_addr;
  victim->lru = tick_;
  victim->kind = kind;
  victim->valid = true;
  victim->dirty = is_write;
  return result;
}

AccessResult Cache::fill(std::uint64_t line_addr, LineKind kind) {
  if (find(line_addr)) return AccessResult{.hit = true};
  ++tick_;
  AccessResult result;
  auto& set = sets_[set_index(line_addr)];
  Line* victim = &set[0];
  for (auto& line : set) {
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  if (victim->valid && victim->dirty) {
    result.writeback = true;
    result.victim_addr = victim->addr;
    result.victim_kind = victim->kind;
    ++stats_.writebacks;
  }
  victim->addr = line_addr;
  // Prefetched sibling fills insert at LRU-adjacent priority: they get the
  // current tick like demand fills (simple and adequate for this model).
  victim->lru = tick_;
  victim->kind = kind;
  victim->valid = true;
  victim->dirty = false;
  return result;
}

bool Cache::contains(std::uint64_t line_addr) const {
  return find(line_addr) != nullptr;
}

void Cache::attach_stats(stats::Registry& reg, const std::string& prefix) {
  reg.gauge(prefix + ".hits", [this](std::uint64_t) {
    return static_cast<double>(stats_.hits);
  });
  reg.gauge(prefix + ".misses", [this](std::uint64_t) {
    return static_cast<double>(stats_.misses);
  });
  reg.gauge(prefix + ".writebacks", [this](std::uint64_t) {
    return static_cast<double>(stats_.writebacks);
  });
  reg.gauge(prefix + ".hit_rate",
            [this](std::uint64_t) { return stats_.hit_rate(); });
}

bool Cache::invalidate(std::uint64_t line_addr) {
  if (Line* line = find(line_addr)) {
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return was_dirty;
  }
  return false;
}

}  // namespace eccsim::cache
