// OpenMetrics textfile exporter for stats::Registry.
//
// Serializes every registered stat into the Prometheus/OpenMetrics text
// exposition format so a node-exporter textfile collector (or plain
// `promtool check metrics`) can scrape a finished run.  Naming follows the
// convention documented in docs/OBSERVABILITY.md:
//
//   - every metric is prefixed `eccsim_`; dotted registry paths map to
//     underscores ("dram.ch0.acts" -> eccsim_dram_ch0_acts_total)
//   - counters/accums are OpenMetrics counters and carry the `_total`
//     suffix; gauges stay gauges
//   - a Distribution becomes four gauges (_count, _sum, _min, _max)
//   - a Histogram becomes a native histogram: cumulative `_bucket{le=}`
//     series, `_sum` (unavailable -> omitted), and `_count`
//   - labels passed by the caller (bench, dram, ...) are attached to
//     every sample; the document ends with the mandatory `# EOF`
//
// Observation-only, like everything in obs: exporting reads the registry
// and never mutates simulation state.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace eccsim::stats {
class Registry;
}

namespace eccsim::obs {

/// Renders `reg` as an OpenMetrics text document.  `labels` are attached
/// to every sample (values are escaped); the result always terminates
/// with `# EOF\n`.
std::string to_openmetrics(
    const stats::Registry& reg,
    const std::vector<std::pair<std::string, std::string>>& labels = {});

/// Renders and atomically writes `reg` to `path` (conventionally
/// results/<bench>.prom).
bool write_openmetrics(
    const std::string& path, const stats::Registry& reg,
    const std::vector<std::pair<std::string, std::string>>& labels = {});

}  // namespace eccsim::obs
