# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lotecc5_rs16_test.
