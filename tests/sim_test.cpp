// Integration tests for the full-system simulator: cross-scheme invariants
// that the paper's evaluation rests on (Sec. V).  These use shortened runs;
// the bench binaries reproduce the full figures.
#include <gtest/gtest.h>

#include "sim/system.hpp"

namespace eccsim::sim {
namespace {

SimOptions quick() {
  SimOptions o;
  o.target_instructions = 400'000;
  o.seed = 3;
  return o;
}

RunResult run(ecc::SchemeId id, const std::string& wl,
              ecc::SystemScale scale = ecc::SystemScale::kQuadEquivalent,
              SimOptions opts = quick()) {
  return run_experiment(id, scale, wl, opts);
}

TEST(SystemSim, CompletesAndCountsInstructions) {
  const RunResult r = run(ecc::SchemeId::kChipkill18, "lbm");
  EXPECT_GE(r.instructions, 400'000u);
  EXPECT_GT(r.mem_cycles, 0u);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_LE(r.ipc, 16.0);  // 8 cores x width 2
  EXPECT_GT(r.mem.reads + r.mem.writes, 0u);
  EXPECT_GT(r.epi_pj, 0.0);
}

TEST(SystemSim, EnergyPartsSumToTotal) {
  const RunResult r = run(ecc::SchemeId::kLotEcc5Parity, "milc");
  EXPECT_NEAR(r.epi_pj, r.dynamic_epi_pj + r.background_epi_pj,
              r.epi_pj * 1e-9);
}

TEST(SystemSim, EpiOrderingMatchesPaperFig10) {
  // The core energy result (Fig. 10, Bin2): chipkill36 > chipkill18 >
  // LOT-ECC9 > LOT-ECC5(+Parity); and RAIM > RAIM+Parity.
  const RunResult ck36 = run(ecc::SchemeId::kChipkill36, "lbm");
  const RunResult ck18 = run(ecc::SchemeId::kChipkill18, "lbm");
  const RunResult lot9 = run(ecc::SchemeId::kLotEcc9, "lbm");
  const RunResult lot5p = run(ecc::SchemeId::kLotEcc5Parity, "lbm");
  const RunResult raim = run(ecc::SchemeId::kRaim, "lbm");
  const RunResult raimp = run(ecc::SchemeId::kRaimParity, "lbm");
  EXPECT_GT(ck36.epi_pj, ck18.epi_pj);
  EXPECT_GT(ck18.epi_pj, lot9.epi_pj);
  EXPECT_GT(lot9.epi_pj, lot5p.epi_pj);
  EXPECT_GT(raim.epi_pj, raimp.epi_pj);
  // Headline: >40% EPI reduction vs 36-device commercial chipkill for a
  // memory-intensive workload (paper: 59.5% Bin2 average).
  EXPECT_GT(1.0 - lot5p.epi_pj / ck36.epi_pj, 0.40);
}

TEST(SystemSim, ParityCostsLittleVsLotEcc5) {
  // Fig. 10: LOT-ECC5+ECC Parity has EPI similar to LOT-ECC5.
  const RunResult lot5 = run(ecc::SchemeId::kLotEcc5, "lbm");
  const RunResult lot5p = run(ecc::SchemeId::kLotEcc5Parity, "lbm");
  EXPECT_NEAR(lot5p.epi_pj / lot5.epi_pj, 1.0, 0.15);
}

TEST(SystemSim, Bin2SavesMoreThanBin1) {
  // Sec. V-A: EPI reduction is larger for high-bandwidth workloads.
  const double red_bin2 =
      1.0 - run(ecc::SchemeId::kLotEcc5Parity, "lbm").epi_pj /
                run(ecc::SchemeId::kChipkill36, "lbm").epi_pj;
  const double red_bin1 =
      1.0 - run(ecc::SchemeId::kLotEcc5Parity, "sjeng").epi_pj /
                run(ecc::SchemeId::kChipkill36, "sjeng").epi_pj;
  EXPECT_GT(red_bin2, red_bin1);
}

TEST(SystemSim, EccTrafficOnlyForMaintSchemes) {
  const RunResult ck18 = run(ecc::SchemeId::kChipkill18, "milc");
  EXPECT_EQ(ck18.mem.ecc_reads + ck18.mem.ecc_writes, 0u);
  const RunResult lot9 = run(ecc::SchemeId::kLotEcc9, "milc");
  EXPECT_GT(lot9.mem.ecc_writes, 0u);
  EXPECT_EQ(lot9.mem.ecc_reads, 0u);  // LOT-ECC evictions are write-only
  const RunResult lot5p = run(ecc::SchemeId::kLotEcc5Parity, "milc");
  EXPECT_GT(lot5p.mem.ecc_reads, 0u);  // parity updates are RMW
  EXPECT_GE(lot5p.mem.ecc_writes, lot5p.mem.ecc_reads);
}

TEST(SystemSim, DualEquivalentHasHigherParityOverhead) {
  // Sec. V-D: fewer channels -> each XOR line covers fewer data lines ->
  // more parity traffic per instruction.
  const RunResult quad =
      run(ecc::SchemeId::kLotEcc5Parity, "milc",
          ecc::SystemScale::kQuadEquivalent);
  const RunResult dual =
      run(ecc::SchemeId::kLotEcc5Parity, "milc",
          ecc::SystemScale::kDualEquivalent);
  const double quad_ecc =
      static_cast<double>(quad.mem.ecc_reads + quad.mem.ecc_writes) /
      static_cast<double>(quad.instructions);
  const double dual_ecc =
      static_cast<double>(dual.mem.ecc_reads + dual.mem.ecc_writes) /
      static_cast<double>(dual.instructions);
  EXPECT_GT(dual_ecc, quad_ecc);
}

TEST(SystemSim, LargerLineFetchesMoreData) {
  // Fig. 16 context: 128B-line chipkill36 moves more 64B units per
  // instruction than 64B-line schemes on a low-spatial-locality workload.
  const RunResult ck36 = run(ecc::SchemeId::kChipkill36, "mcf");
  const RunResult ck18 = run(ecc::SchemeId::kChipkill18, "mcf");
  EXPECT_GT(ck36.mapi, ck18.mapi);
}

TEST(SystemSim, DeterministicForSeed) {
  const RunResult a = run(ecc::SchemeId::kLotEcc9, "gcc");
  const RunResult b = run(ecc::SchemeId::kLotEcc9, "gcc");
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.mem_cycles, b.mem_cycles);
  EXPECT_DOUBLE_EQ(a.epi_pj, b.epi_pj);
}

TEST(SystemSim, FaultyBankModeAddsEccTraffic) {
  // Degraded mode (steps B/D of Fig. 6): reads/writes to faulty banks
  // touch the materialized ECC lines.
  SimOptions opts = quick();
  const RunResult healthy =
      run(ecc::SchemeId::kLotEcc5Parity, "lbm",
          ecc::SystemScale::kQuadEquivalent, opts);
  // Mark every bank of channel 0 faulty.
  for (std::uint32_t rank = 0; rank < 4; ++rank) {
    for (std::uint32_t bank = 0; bank < 8; ++bank) {
      opts.faulty_banks.push_back((0u << 16) | (rank << 8) | bank);
    }
  }
  const RunResult degraded =
      run(ecc::SchemeId::kLotEcc5Parity, "lbm",
          ecc::SystemScale::kQuadEquivalent, opts);
  EXPECT_GT(degraded.mem.ecc_reads + degraded.mem.ecc_writes,
            healthy.mem.ecc_reads + healthy.mem.ecc_writes);
}

TEST(SystemSim, BandwidthUtilizationBounded) {
  for (const char* wl : {"lbm", "sjeng"}) {
    const RunResult r = run(ecc::SchemeId::kChipkill18, wl);
    EXPECT_GE(r.bandwidth_utilization, 0.0);
    EXPECT_LE(r.bandwidth_utilization, 1.0);
  }
}

TEST(SystemSim, LowBandwidthWorkloadUsesLessBandwidth) {
  const RunResult heavy = run(ecc::SchemeId::kChipkill18, "lbm");
  const RunResult light = run(ecc::SchemeId::kChipkill18, "sjeng");
  EXPECT_GT(heavy.bandwidth_utilization, light.bandwidth_utilization);
}

TEST(SystemSim, PowerdownDisabledRaisesBackgroundEnergy) {
  SimOptions opts = quick();
  const RunResult on = run(ecc::SchemeId::kLotEcc5Parity, "sjeng",
                           ecc::SystemScale::kQuadEquivalent, opts);
  opts.powerdown_enabled = false;
  const RunResult off = run(ecc::SchemeId::kLotEcc5Parity, "sjeng",
                            ecc::SystemScale::kQuadEquivalent, opts);
  EXPECT_GT(off.background_epi_pj, on.background_epi_pj);
}

TEST(SystemSim, OpenPageShiftsEnergyFromDynamicToBackground) {
  SimOptions opts = quick();
  const RunResult close = run(ecc::SchemeId::kLotEcc5Parity, "lbm",
                              ecc::SystemScale::kQuadEquivalent, opts);
  opts.row_policy = dram::RowPolicy::kOpenPage;
  const RunResult open = run(ecc::SchemeId::kLotEcc5Parity, "lbm",
                             ecc::SystemScale::kQuadEquivalent, opts);
  EXPECT_LE(open.dynamic_epi_pj, close.dynamic_epi_pj * 1.02);
  EXPECT_GT(open.background_epi_pj, close.background_epi_pj);
}

TEST(SystemSim, ScrubInjectionAddsEccReads) {
  SimOptions opts = quick();
  const RunResult without = run(ecc::SchemeId::kChipkill18, "gcc",
                                ecc::SystemScale::kQuadEquivalent, opts);
  opts.scrub_read_interval = 64;
  const RunResult with = run(ecc::SchemeId::kChipkill18, "gcc",
                             ecc::SystemScale::kQuadEquivalent, opts);
  EXPECT_GT(with.mem.ecc_reads, without.mem.ecc_reads);
}

TEST(SystemSim, TinyDedicatedEccCacheInflatesParityTraffic) {
  SimOptions opts = quick();
  const RunResult shared = run(ecc::SchemeId::kLotEcc5Parity, "milc",
                               ecc::SystemScale::kQuadEquivalent, opts);
  opts.dedicated_ecc_cache_bytes = 16 * 1024;
  const RunResult dedicated = run(ecc::SchemeId::kLotEcc5Parity, "milc",
                                  ecc::SystemScale::kQuadEquivalent, opts);
  EXPECT_GT(dedicated.mem.ecc_reads + dedicated.mem.ecc_writes,
            shared.mem.ecc_reads + shared.mem.ecc_writes);
}

TEST(SystemSim, FasterSpeedBinCostsEnergyBuysLatency) {
  SimOptions opts = quick();
  ecc::SchemeDesc base = ecc::make_scheme(ecc::SchemeId::kLotEcc5Parity,
                                          ecc::SystemScale::kQuadEquivalent);
  ecc::SchemeDesc fast = base;
  fast.speed_factor = 1.16;
  SystemSim sb(base, trace::workload_by_name("lbm"), CpuConfig{}, opts);
  SystemSim sf(fast, trace::workload_by_name("lbm"), CpuConfig{}, opts);
  const RunResult rb = sb.run();
  const RunResult rf = sf.run();
  // Sec. V-D's point: the faster bin's energy premium is small (the paper
  // estimates ~5%) compared to the ~45-50% EPI advantage it protects.
  // (Its throughput benefit only materializes when bandwidth-bound; at
  // this short run length IPC is within noise, so we don't assert on it.)
  EXPECT_GT(rf.epi_pj, rb.epi_pj);
  EXPECT_LT(rf.epi_pj, rb.epi_pj * 1.12);
}

}  // namespace
}  // namespace eccsim::sim
