// Fig. 9: memory bandwidth utilization of every workload on a dual-channel
// commercial (36-device chipkill) ECC memory system.  This is the
// characterization that defines Bin1 (low bandwidth) and Bin2 (high
// bandwidth) for Figs. 10-17.
#include <cstdio>

#include "bench_common.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  const auto& rows = bench::sweep(ecc::SystemScale::kDualEquivalent);
  Table t({"workload", "bin", "bandwidth utilization", "GB/s"});
  // A dual-channel 36-device system moves 16B data per memory clock per
  // channel at 1 GHz: 32 GB/s per logical channel.
  const double peak_gbs = 2 * 32.0;
  for (const auto& name : bench::workload_order()) {
    const auto& r = bench::find(rows, "chipkill36", name);
    t.add_row({name, std::to_string(bench::bin_of(name)),
               Table::pct(r.bandwidth_utilization),
               Table::num(r.bandwidth_utilization * peak_gbs, 1)});
  }
  std::printf(
      "Fig. 9 -- Workload bandwidth utilization, dual-channel commercial\n"
      "chipkill memory system\n\n");
  bench::emit("fig09_workload_bandwidth", t);
  std::printf(
      "Paper check: every workload consumes >= 1%% of system bandwidth;\n"
      "Bin2 workloads sit well above Bin1.\n");
  return 0;
}
