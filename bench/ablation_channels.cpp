// Ablation: channel-count sensitivity of ECC Parity (the paper's central
// scaling argument, Sec. II / V-B).  Sweeps N and reports the capacity
// overhead formula, the parity-group coverage, and the reserved parity
// rows -- the quantities that shrink with 1/(N-1).
#include <cstdio>

#include "bench_common.hpp"
#include "eccparity/layout.hpp"

using namespace eccsim;

int main(int argc, char** argv) {
  eccsim::bench::init(argc, argv);
  std::printf("Ablation -- ECC Parity vs channel count (LOT-ECC5 base)\n\n");
  Table t({"channels", "capacity overhead", "XOR line coverage",
           "reserved rows/bank", "parity share of overhead"});
  for (std::uint32_t n : {2u, 3u, 4u, 5u, 6u, 8u, 10u, 12u, 16u}) {
    ecc::SchemeDesc d =
        ecc::make_scheme(ecc::SchemeId::kLotEcc5Parity,
                         ecc::SystemScale::kQuadEquivalent);
    d.channels = n;
    d.ecc_line_coverage = 4 * (n - 1);
    dram::MemGeometry geom;
    geom.channels = n;
    geom.ranks_per_channel = 4;
    geom.rows_per_bank = 32768;
    geom.line_bytes = 64;
    eccparity::ParityLayout layout(geom, 16);
    const double total = d.capacity_overhead();
    t.add_row({std::to_string(n), Table::pct(total),
               std::to_string(d.ecc_line_coverage),
               std::to_string(layout.reserved_rows_per_bank()),
               Table::pct((total - d.detection_overhead) / total)});
  }
  bench::emit("ablation_channels", t);
  std::printf(
      "At N=2 the parity *is* the correction bits (no sharing); by N=8\n"
      "the correction overhead has shrunk 7x, which is why the paper\n"
      "positions ECC Parity as a many-channel optimization.\n");
  return 0;
}
