file(REMOVE_RECURSE
  "CMakeFiles/fig02_mtbf_channels.dir/fig02_mtbf_channels.cpp.o"
  "CMakeFiles/fig02_mtbf_channels.dir/fig02_mtbf_channels.cpp.o.d"
  "fig02_mtbf_channels"
  "fig02_mtbf_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_mtbf_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
