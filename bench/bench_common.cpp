#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "gf/kernels.hpp"
#include "obs/heartbeat.hpp"
#include "obs/manifest.hpp"
#include "obs/openmetrics.hpp"
#include "obs/run_info.hpp"
#include "runner/stats_json.hpp"
#include "runner/thread_pool.hpp"
#include "stats/scope.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"

namespace eccsim::bench {

namespace {

// Per-workload stimulus seeds come from trace::paper_sweep_seed: substreams
// of root seed 1, so every scheme observes the same stimulus for a given
// workload (the comparisons in Figs. 10-17 are paired) while distinct
// workloads get statistically independent streams.  tracetool records with
// the same function, which is what makes recorded traces replay
// bit-identically into these sweeps.

// Process start, approximated at static-init time; emit() reports elapsed
// wall-clock relative to it.
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::string(v) != "0";
}

bool quick_mode() { return env_flag("ECCSIM_QUICK"); }
bool smoke_mode() { return env_flag("ECCSIM_SMOKE"); }

bool cache_enabled() {
  const char* c = std::getenv("ECCSIM_SWEEP_CACHE");
  return c == nullptr || std::string(c) != "0";
}

std::string fidelity_suffix() {
  if (smoke_mode()) return "_smoke";
  if (quick_mode()) return "_quick";
  return "";
}

/// Filename suffix for non-default DRAM generations ("_ddr4"/"_ddr5");
/// empty for DDR3 so the paper-faithful artifact names are unchanged.
std::string dram_suffix() {
  const dram::Generation gen = dram_generation();
  if (gen == dram::Generation::kDdr3) return "";
  return "_" + dram::to_string(gen);
}

/// Output directory prefix: smoke runs are quarantined in a subdirectory
/// so CI-sized numbers never overwrite the committed full-fidelity CSVs,
/// and non-DDR3 generations get their own subdirectory for the same
/// reason (the committed results are all DDR3).
std::string out_dir(const std::string& base) {
  std::string dir = base;
  const dram::Generation gen = dram_generation();
  if (gen != dram::Generation::kDdr3) dir += "/" + dram::to_string(gen);
  if (smoke_mode()) dir += "/smoke";
  return dir;
}

std::string scale_name(ecc::SystemScale scale) {
  return scale == ecc::SystemScale::kQuadEquivalent ? "quad" : "dual";
}

std::string cache_path(ecc::SystemScale scale) {
  return "bench_results/sweep_" + scale_name(scale) + dram_suffix() +
         fidelity_suffix() + ".csv";
}

std::string g_bench_name = "bench";

/// Trace record/replay controls (the --trace-in/--trace-out/--trace-point
/// flags set these; scripts can set the environment directly).
std::string trace_in_dir() {
  const char* v = std::getenv("ECCSIM_TRACE_IN");
  return v != nullptr ? std::string(v) : std::string();
}
std::string trace_out_dir() {
  const char* v = std::getenv("ECCSIM_TRACE_OUT");
  return v != nullptr ? std::string(v) : std::string();
}
tracefile::CapturePoint trace_point() {
  const char* v = std::getenv("ECCSIM_TRACE_POINT");
  const std::string s = v != nullptr ? v : "pre";
  if (s == "pre") return tracefile::CapturePoint::kPreLlc;
  if (s == "post") return tracefile::CapturePoint::kPostLlc;
  std::fprintf(stderr, "%s: ECCSIM_TRACE_POINT/--trace-point must be 'pre' "
               "or 'post', got '%s'\n", g_bench_name.c_str(), s.c_str());
  std::exit(2);
}

/// Resolves the replay file for one sweep cell: a shared per-workload
/// trace first (pre-LLC stimulus is scheme-independent), then a per-cell
/// one.  Runs on the main thread before the fan-out so a missing file is
/// one clear error instead of a worker-thread exception.
std::string resolve_trace_in(const std::string& workload,
                             const std::string& scheme) {
  const std::string shared = trace_in_dir() + "/" + workload + ".ecctrace";
  const std::string per_cell =
      trace_in_dir() + "/" + workload + "_" + scheme + ".ecctrace";
  for (const auto& p : {shared, per_cell}) {
    if (std::ifstream(p).good()) return p;
  }
  std::fprintf(stderr,
               "%s: no trace for %s/%s under --trace-in (tried %s and %s)\n",
               g_bench_name.c_str(), workload.c_str(), scheme.c_str(),
               shared.c_str(), per_cell.c_str());
  obs::note_exit_code(1);
  std::exit(1);
}

/// The 16 paper workloads with their calibrated parameters, for --help
/// discovery and for naming traces to record.
void print_workloads() {
  std::printf("%-14s %-4s %-5s %-7s %-9s %s\n", "workload", "bin", "mt",
              "apki", "write%", "footprint");
  for (const auto& w : trace::paper_workloads()) {
    std::printf("%-14s %-4d %-5s %-7.1f %-9.0f %llu MB\n", w.name.c_str(),
                w.bin, w.multithreaded ? "yes" : "no", w.apki,
                w.write_fraction * 100.0,
                static_cast<unsigned long long>(w.footprint_bytes >> 20));
  }
}

/// Default epoch length: small enough that even a CI-sized smoke run
/// (~tens of thousands of memory cycles) records several epochs.
std::uint64_t default_epoch_cycles() { return smoke_mode() ? 500 : 10'000; }

stats::Config stats_config() {
  return stats::Config::from_env(default_epoch_cycles());
}

void write_stats_dump(
    const std::string& scale_label, const stats::Config& cfg,
    const std::vector<std::unique_ptr<stats::Collector>>& collectors);
extern std::vector<std::unique_ptr<stats::Collector>> g_adhoc_collectors;

/// Process-wide accumulation of every merged registry this run produced
/// (sweep + ad-hoc collectors), exported as results/<bench>.prom by the
/// atexit report.  Function-local static, touched from init() so it
/// outlives the atexit handler.
stats::Registry& prom_registry() {
  static stats::Registry reg;
  return reg;
}

std::string manifest_path() {
  return out_dir("results") + "/" + g_bench_name + ".manifest.json";
}

/// End-of-run report, registered via std::atexit by init().  The first
/// line always prints (scripts/run_all.sh parses it for its summary); the
/// per-scope profile only exists when --stats enabled the profiler.
void profile_report() {
  // Flush any collectors from direct-SystemSim benches (ablations) first:
  // their stats dump is part of the run's output, not just the profile.
  if (!g_adhoc_collectors.empty()) {
    write_stats_dump("custom", stats_config(), g_adhoc_collectors);
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - kProcessStart)
                          .count();
  const double rss_mb =
      static_cast<double>(stats::process_peak_rss_bytes()) / (1024.0 * 1024.0);
  std::fprintf(stderr, "[eccsim-profile] bench=%s wall_seconds=%.3f "
               "peak_rss_mb=%.1f\n",
               g_bench_name.c_str(), wall, rss_mb);

  // Finalize the run manifest (status was "running" since init()).
  obs::Manifest& m = obs::manifest();
  m.finished_utc = obs::utc_timestamp();
  m.wall_seconds = wall;
  m.peak_rss_bytes = stats::process_peak_rss_bytes();
  if (m.status == "running") m.status = "completed";
  obs::write_manifest(manifest_path(), m);

  if (stats_config().enabled && prom_registry().size() > 0) {
    obs::write_openmetrics(
        out_dir("results") + "/" + g_bench_name + ".prom", prom_registry(),
        {{"bench", g_bench_name},
         {"dram", dram::to_string(dram_generation())},
         {"fidelity",
          smoke_mode() ? "smoke" : (quick_mode() ? "quick" : "full")}});
  }
  if (!stats::Profiler::enabled()) return;

  const auto snapshot = stats::Profiler::snapshot();
  for (const auto& [scope, totals] : snapshot) {
    std::fprintf(stderr, "[eccsim-profile] scope=%s calls=%llu seconds=%.3f\n",
                 scope.c_str(),
                 static_cast<unsigned long long>(totals.calls),
                 totals.seconds);
  }
  runner::Json doc = runner::Json::object();
  doc.set("bench", g_bench_name);
  doc.set("wall_seconds", wall);
  doc.set("peak_rss_bytes", stats::process_peak_rss_bytes());
  doc.set("scopes", runner::profile_to_json(snapshot));
  runner::write_json(out_dir("results") + "/" + g_bench_name + ".profile.json",
                     doc);
}

/// Collectors handed out by new_collector() for benches that build
/// SystemSims directly; dumped by the atexit report.
std::vector<std::unique_ptr<stats::Collector>> g_adhoc_collectors;

/// Writes results/<bench>.stats.json (merged registry + per-cell epoch
/// series + trace-file index), flushes the per-cell trace files, and
/// prints the human-readable summary table.
void write_stats_dump(
    const std::string& scale_label, const stats::Config& cfg,
    const std::vector<std::unique_ptr<stats::Collector>>& collectors) {
  stats::Registry merged;
  for (const auto& c : collectors) merged.merge(c->registry());
  // Feed the process-wide OpenMetrics registry too: a bench may dump both
  // a sweep and ad-hoc collectors, and the .prom file reflects their sum.
  prom_registry().merge(merged);

  runner::Json doc = runner::Json::object();
  doc.set("bench", g_bench_name);
  doc.set("scale", scale_label);
  doc.set("epoch_cycles", cfg.epoch_cycles);
  doc.set("metadata", runner::to_json(runner::collect_metadata()));
  doc.set("merged", runner::to_json(merged));
  runner::Json cells = runner::Json::array();
  for (const auto& c : collectors) {
    runner::Json jc = runner::Json::object();
    jc.set("workload", c->workload());
    jc.set("scheme", c->scheme());
    if (stats::Tracer* t = c->tracer()) {
      t->write();
      jc.set("trace_file", t->path());
      jc.set("trace_events", t->recorded());
      jc.set("trace_dropped", t->dropped());
    }
    jc.set("stats", runner::to_json(c->registry()));
    cells.push_back(std::move(jc));
  }
  doc.set("cells", cells);
  const std::string path =
      out_dir("results") + "/" + g_bench_name + ".stats.json";
  runner::write_json(path, doc);

  // Human-readable summary of the merged push stats (per-bank counters are
  // elided: 32+ rows of detail that belong in the JSON, not on a terminal).
  std::printf("\n-- stats summary: %zu cells merged -> %s --\n",
              collectors.size(), path.c_str());
  std::printf("%-44s %s\n", "stat", "value");
  for (const auto& e : merged.view()) {
    if (e.path->find(".bank") != std::string::npos) continue;
    switch (e.kind) {
      case stats::Registry::Kind::kCounter:
      case stats::Registry::Kind::kAccum:
        std::printf("%-44s %.0f\n", e.path->c_str(), e.value);
        break;
      case stats::Registry::Kind::kDistribution:
        std::printf("%-44s mean=%.2f min=%.0f max=%.0f n=%llu\n",
                    e.path->c_str(), e.dist->mean(), e.dist->min(),
                    e.dist->max(),
                    static_cast<unsigned long long>(e.dist->count()));
        break;
      case stats::Registry::Kind::kHistogram:
        std::printf("%-44s p50=%.0f p95=%.0f p99=%.0f n=%llu\n",
                    e.path->c_str(), e.hist->percentile(50),
                    e.hist->percentile(95), e.hist->percentile(99),
                    static_cast<unsigned long long>(e.hist->total()));
        break;
      case stats::Registry::Kind::kGauge:
        break;  // per-run artifacts; merged registries carry none
    }
  }
  std::printf("\n");
}

std::string serialize(const sim::RunResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.scheme << ',' << r.workload << ',' << r.instructions << ','
     << r.mem_cycles << ',' << r.ipc << ',' << r.epi_pj << ','
     << r.dynamic_epi_pj << ',' << r.background_epi_pj << ',' << r.mapi
     << ',' << r.bandwidth_utilization << ',' << r.avg_read_latency << ','
     << r.mem.reads << ',' << r.mem.writes << ',' << r.mem.ecc_reads << ','
     << r.mem.ecc_writes;
  return os.str();
}

bool deserialize(const std::string& line, sim::RunResult& r) {
  std::istringstream is(line);
  std::string cell;
  auto next = [&](std::string& out) {
    return static_cast<bool>(std::getline(is, out, ','));
  };
  std::string f[15];
  for (auto& s : f) {
    if (!next(s)) return false;
  }
  r.scheme = f[0];
  r.workload = f[1];
  r.instructions = std::stoull(f[2]);
  r.mem_cycles = std::stoull(f[3]);
  r.ipc = std::stod(f[4]);
  r.epi_pj = std::stod(f[5]);
  r.dynamic_epi_pj = std::stod(f[6]);
  r.background_epi_pj = std::stod(f[7]);
  r.mapi = std::stod(f[8]);
  r.bandwidth_utilization = std::stod(f[9]);
  r.avg_read_latency = std::stod(f[10]);
  r.mem.reads = std::stoull(f[11]);
  r.mem.writes = std::stoull(f[12]);
  r.mem.ecc_reads = std::stoull(f[13]);
  r.mem.ecc_writes = std::stoull(f[14]);
  return true;
}

std::vector<sim::RunResult> load_cache(const std::string& path) {
  std::vector<sim::RunResult> rows;
  std::ifstream in(path);
  if (!in) return rows;
  std::string line;
  while (std::getline(in, line)) {
    sim::RunResult r;
    if (deserialize(line, r)) rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<sim::RunResult> run_sweep(ecc::SystemScale scale) {
  // One cell per (workload, scheme), fanned out over the runner.  Each
  // cell builds its own SimOptions with the workload's substream seed, so
  // schemes stay paired per workload and nothing depends on execution
  // order.  With --stats every cell additionally owns one Collector
  // (single-threaded registries; merged on this thread after the fan-out,
  // so the bit-identical-at-any-thread-count guarantee is untouched).
  const stats::Config stats_cfg = stats_config();
  std::vector<std::unique_ptr<stats::Collector>> collectors;
  const auto schemes = ecc::all_schemes();
  const auto& workloads = trace::paper_workloads();
  std::vector<runner::Cell> cells;
  cells.reserve(workloads.size() * schemes.size());
  const tracefile::CapturePoint point = trace_point();
  const dram::Generation gen = dram_generation();
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const std::uint64_t seed = trace::paper_sweep_seed(wi);
    for (const auto id : schemes) {
      runner::Cell cell;
      cell.scheme = ecc::to_string(id);
      cell.workload = workloads[wi].name;
      // Trace paths resolve on this thread (clear errors); recordings get
      // per-cell names so concurrent cells never share a file.
      std::string trace_in;
      if (!trace_in_dir().empty()) {
        trace_in = resolve_trace_in(cell.workload, cell.scheme);
      }
      std::string trace_out;
      if (!trace_out_dir().empty()) {
        trace_out = trace_out_dir() + "/" + cell.workload + "_" +
                    cell.scheme + ".ecctrace";
      }
      stats::Collector* col = nullptr;
      if (stats_cfg.enabled) {
        collectors.push_back(std::make_unique<stats::Collector>(stats_cfg));
        col = collectors.back().get();
        col->set_label(cell.workload, cell.scheme);
        if (!stats_cfg.trace_dir.empty()) {
          col->open_trace(stats_cfg.trace_dir + "/" + cell.workload + "_" +
                          cell.scheme + ".trace.json");
        }
      }
      cell.work = [id, scale, seed, name = workloads[wi].name, col,
                   trace_in, trace_out, point, gen] {
        sim::SimOptions opts;
        opts.target_instructions = target_instructions();
        opts.seed = seed;
        opts.dram_gen = gen;
        opts.stats = col;
        opts.trace_in = trace_in;
        opts.trace_out = trace_out;
        opts.trace_point = point;
        if (trace_in.empty() && trace_out.empty()) {
          return sim::run_experiment(id, scale, name, opts);
        }
        // Trace I/O can fail mid-run (exhausted/corrupt trace, full disk);
        // the runner's workers do not catch exceptions, so fail the whole
        // bench here with a readable message instead of std::terminate.
        try {
          return sim::run_experiment(id, scale, name, opts);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "\n%s: trace failure in cell %s/%s: %s\n",
                       g_bench_name.c_str(), name.c_str(),
                       ecc::to_string(id).c_str(), e.what());
          obs::note_exit_code(1);
          std::exit(1);
        }
      };
      cells.push_back(std::move(cell));
    }
  }

  const runner::Report report =
      run_cells("sweep " + scale_name(scale), cells);
  if (stats_cfg.enabled) {
    write_stats_dump(scale_name(scale), stats_cfg, collectors);
  }

  // Persist the per-cell metrics + fan-out timings (this is where the
  // realized speedup is recorded).
  runner::Json doc = runner::Json::object();
  doc.set("bench", "sweep_" + scale_name(scale));
  doc.set("scale", scale_name(scale));
  doc.set("target_instructions", target_instructions());
  doc.set("metadata", runner::to_json(runner::collect_metadata()));
  doc.set("run", runner::to_json(report));
  runner::write_json(
      out_dir("results") + "/sweep_" + scale_name(scale) + ".json", doc);

  std::vector<sim::RunResult> rows;
  rows.reserve(report.cells.size());
  for (const auto& c : report.cells) rows.push_back(c.result);
  return rows;
}

}  // namespace

void init(int argc, char** argv) {
  if (argc > 0 && argv[0] != nullptr) {
    const std::string path = argv[0];
    const auto slash = path.find_last_of('/');
    g_bench_name =
        slash == std::string::npos ? path : path.substr(slash + 1);
  }
  // Valued flags accept both `--flag=value` and `--flag value`; returns
  // the value and advances `i` past a space-separated one.
  auto flag_value = [&](int& i, const std::string& arg,
                        const std::string& name) -> const char* {
    if (arg.rfind(name + "=", 0) == 0) return argv[i] + name.size() + 1;
    if (arg != name) return nullptr;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s requires a value\n", g_bench_name.c_str(),
                   name.c_str());
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--stats") {
      setenv("ECCSIM_STATS", "1", 1);
    } else if (arg.rfind("--stats-epoch=", 0) == 0) {
      setenv("ECCSIM_STATS", "1", 1);
      setenv("STATS_EPOCH", arg.c_str() + 14, 1);
    } else if (arg.rfind("--trace=", 0) == 0) {
      setenv("STATS_TRACE", arg.c_str() + 8, 1);
    } else if (arg == "--smoke") {
      setenv("ECCSIM_SMOKE", "1", 1);
    } else if (arg == "--quick") {
      setenv("ECCSIM_QUICK", "1", 1);
    } else if ((v = flag_value(i, arg, "--dram")) != nullptr) {
      if (!dram::parse_generation(v)) {
        std::fprintf(stderr,
                     "%s: --dram must be ddr3, ddr4, or ddr5, got '%s'\n",
                     g_bench_name.c_str(), v);
        std::exit(2);
      }
      setenv("ECCSIM_DRAM", v, 1);
    } else if ((v = flag_value(i, arg, "--mc-systems")) != nullptr) {
      setenv("ECCSIM_MC_SYSTEMS", v, 1);
    } else if ((v = flag_value(i, arg, "--mc-chunk")) != nullptr) {
      setenv("ECCSIM_MC_CHUNK", v, 1);
    } else if ((v = flag_value(i, arg, "--mc-target-rel-ci")) != nullptr) {
      setenv("ECCSIM_MC_TARGET_REL_CI", v, 1);
    } else if ((v = flag_value(i, arg, "--mc-checkpoint")) != nullptr) {
      setenv("ECCSIM_MC_CHECKPOINT", v, 1);
    } else if ((v = flag_value(i, arg, "--trace-in")) != nullptr) {
      setenv("ECCSIM_TRACE_IN", v, 1);
    } else if ((v = flag_value(i, arg, "--trace-out")) != nullptr) {
      setenv("ECCSIM_TRACE_OUT", v, 1);
    } else if ((v = flag_value(i, arg, "--trace-point")) != nullptr) {
      setenv("ECCSIM_TRACE_POINT", v, 1);
      (void)trace_point();  // reject anything but pre/post immediately
    } else if ((v = flag_value(i, arg, "--status")) != nullptr) {
      setenv("ECCSIM_STATUS", v, 1);
    } else if (arg == "--progress") {
      setenv("ECCSIM_PROGRESS", "1", 1);
    } else if (arg == "--list-workloads") {
      print_workloads();
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--stats] [--stats-epoch=N] [--trace=DIR]\n"
          "          [--smoke|--quick] [--dram G] [--list-workloads]\n"
          "          [--trace-in DIR] [--trace-out DIR] "
          "[--trace-point pre|post]\n"
          "          [--mc-systems N] [--mc-chunk N]\n"
          "          [--mc-target-rel-ci X] [--mc-checkpoint FILE]\n"
          "          [--status FILE] [--progress]\n"
          "  --stats          enable the stats registry, epoch time series,\n"
          "                   results/<bench>.stats.json, and the profiler\n"
          "  --stats-epoch=N  epoch length in memory cycles (implies "
          "--stats)\n"
          "  --trace=DIR      Chrome trace-event file per sweep cell in DIR\n"
          "  --smoke          CI-sized run, outputs under .../smoke/\n"
          "  --quick          reduced-fidelity run\n"
          "  --dram G         DRAM generation: ddr3 (default), ddr4, ddr5;\n"
          "                   non-ddr3 sweep caches and outputs go to\n"
          "                   generation-suffixed paths (sweep_*_ddr5.csv,\n"
          "                   bench_results/ddr5/, results/ddr5/)\n"
          "  --list-workloads print the 16 paper workloads (name, bin,\n"
          "                   multithreaded, apki, write%%, footprint)\n"
          "  --trace-in DIR   replay sweep stimulus from DIR's .ecctrace\n"
          "                   files (<workload>.ecctrace, falling back to\n"
          "                   <workload>_<scheme>.ecctrace); bypasses the\n"
          "                   sweep CSV cache so the cells really replay\n"
          "  --trace-out DIR  record each sweep cell's stimulus to\n"
          "                   DIR/<workload>_<scheme>.ecctrace\n"
          "  --trace-point P  capture point for --trace-out: 'pre' (pre-LLC\n"
          "                   per-core stream, replayable; default) or\n"
          "                   'post' (post-LLC DRAM requests, analysis "
          "only)\n"
          "  --mc-systems N   Monte Carlo system budget (overrides scaling)\n"
          "  --mc-chunk N     MC systems per chunk (any value: results are\n"
          "                   bit-identical; affects early-stop/checkpoint\n"
          "                   granularity only)\n"
          "  --mc-target-rel-ci X  stop MC runs early once the relative\n"
          "                   95%% CI half-width of the estimate reaches X\n"
          "  --mc-checkpoint FILE  append completed MC chunks to FILE and\n"
          "                   skip them on rerun (kill-safe resume)\n"
          "  --status FILE    publish live progress snapshots to FILE\n"
          "                   (atomic JSON; watch with `benchtool watch`)\n"
          "  --progress       live progress line on stderr (throughput,\n"
          "                   ETA, and rel-CI during Monte Carlo runs)\n"
          "Environment: ECCSIM_STATS, STATS_EPOCH, STATS_TRACE,\n"
          "STATS_TRACE_LIMIT, ECCSIM_QUICK, ECCSIM_SMOKE, ECCSIM_DRAM,\n"
          "RUNNER_THREADS, ECCSIM_SWEEP_CACHE, ECCSIM_CHECK,\n"
          "ECCSIM_TRACE_IN, ECCSIM_TRACE_OUT, ECCSIM_TRACE_POINT,\n"
          "ECCSIM_MC_SYSTEMS, ECCSIM_MC_CHUNK, ECCSIM_MC_TARGET_REL_CI,\n"
          "ECCSIM_MC_CHECKPOINT, ECCSIM_STATUS, ECCSIM_PROGRESS,\n"
          "ECCSIM_STATUS_INTERVAL_MS\n",
          g_bench_name.c_str());
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s' (try --help)\n",
                   g_bench_name.c_str(), arg.c_str());
      std::exit(2);
    }
  }
  if (stats_config().enabled) stats::Profiler::set_enabled(true);

  // Boot the run manifest: written with status "running" now, finalized
  // by the atexit report.  A reader that finds a stale "running" manifest
  // knows the process died without reaching its exit hook.
  obs::Heartbeat::global().set_tool(g_bench_name);
  obs::Manifest& m = obs::manifest();
  m.tool = g_bench_name;
  for (int i = 1; i < argc; ++i) m.args.emplace_back(argv[i]);
  m.git_sha = obs::git_head_sha();
  m.dram = dram::to_string(dram_generation());
  // All sweeps draw per-workload substreams of root seed 1 (see
  // trace::paper_sweep_seed); that is the only seed regime the benches use.
  m.seed_regime = "paper_sweep_seed(root=1)";
  m.threads = runner::ThreadPool::default_thread_count();
  m.host = obs::hostname();
  m.host_cpus = obs::cpu_count();
  m.started_utc = obs::utc_timestamp();
  m.extra.emplace_back("fidelity", smoke_mode()   ? "smoke"
                                   : quick_mode() ? "quick"
                                                  : "full");
  // Resolving the GF kernel here makes a bad ECCSIM_KERNEL fail fast at
  // startup (exit 2, like any malformed flag) instead of mid-sweep, and
  // stamps the manifest so every result names the kernel that computed it.
  const gf::Kernel kern = gf::active_kernel();
  m.extra.emplace_back("kernel", gf::kernel_name(kern));
  obs::write_manifest(manifest_path(), m);

  // Companion kernel-provenance document (schema eccsim.kernels/1, see
  // docs/OBSERVABILITY.md): which kernel ran, whether it was forced, and
  // what the CPU offered.  Observation-only; results are kernel-invariant
  // by the oracle guarantee (docs/KERNELS.md).
  {
    runner::Json kdoc = runner::Json::object();
    kdoc.set("schema", "eccsim.kernels/1");
    kdoc.set("bench", g_bench_name);
    kdoc.set("active", gf::kernel_name(kern));
    const char* forced = std::getenv("ECCSIM_KERNEL");
    kdoc.set("override", forced != nullptr ? runner::Json(forced)
                                           : runner::Json(nullptr));
    runner::Json avail = runner::Json::array();
    for (gf::Kernel k : {gf::Kernel::kScalar, gf::Kernel::kSlice8,
                         gf::Kernel::kSimd}) {
      if (gf::kernel_available(k)) avail.push_back(gf::kernel_name(k));
    }
    kdoc.set("available", std::move(avail));
    kdoc.set("simd_avx2", gf::kernel_simd_uses_avx2());
    runner::write_json(
        out_dir("results") + "/" + g_bench_name + ".kernels.json", kdoc);
  }

  // Touch the profiler's (and exporter's) function-local statics now so
  // they are constructed before the atexit handler registers -- C++ tears
  // static storage down in reverse order, so this guarantees they outlive
  // it.
  (void)stats::Profiler::snapshot();
  (void)prom_registry();
  std::atexit(&profile_report);
}

const std::string& bench_name() { return g_bench_name; }

dram::Generation dram_generation() {
  try {
    return dram::generation_from_env().value_or(dram::Generation::kDdr3);
  } catch (const std::exception& e) {
    // A typo in ECCSIM_DRAM must not silently benchmark DDR3 (or abort
    // with an unhandled exception from deep inside a path helper).
    std::fprintf(stderr, "%s: %s\n", g_bench_name.c_str(), e.what());
    std::exit(2);
  }
}

stats::Collector* new_collector(const std::string& workload,
                                const std::string& scheme) {
  const stats::Config cfg = stats_config();
  if (!cfg.enabled) return nullptr;
  g_adhoc_collectors.push_back(std::make_unique<stats::Collector>(cfg));
  stats::Collector* col = g_adhoc_collectors.back().get();
  col->set_label(workload, scheme);
  if (!cfg.trace_dir.empty()) {
    col->open_trace(cfg.trace_dir + "/" + workload + "_" + scheme +
                    ".trace.json");
  }
  return col;
}

std::uint64_t target_instructions() {
  if (smoke_mode()) return 50'000;
  return quick_mode() ? 200'000 : 1'000'000;
}

faults::McOptions mc_options() {
  faults::McOptions opts;
  if (const char* v = std::getenv("ECCSIM_MC_CHUNK")) {
    opts.chunk_size = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
  }
  if (const char* v = std::getenv("ECCSIM_MC_TARGET_REL_CI")) {
    opts.target_rel_ci = std::strtod(v, nullptr);
  }
  if (const char* v = std::getenv("ECCSIM_MC_CHECKPOINT")) {
    opts.checkpoint_path = v;
  }
  if (stats_config().enabled) {
    // One collector labeled ("mc", <bench>) carries every MC run's mc.*
    // counters and rel-CI series into results/<bench>.stats.json.
    static stats::Collector* col = new_collector("mc", g_bench_name);
    opts.stats = &col->registry();
  }
  return opts;
}

unsigned mc_systems(unsigned full) {
  if (const char* v = std::getenv("ECCSIM_MC_SYSTEMS")) {
    const auto n = std::strtoul(v, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  unsigned n = full;
  if (smoke_mode()) {
    n = full / 20;
  } else if (quick_mode()) {
    n = full / 5;
  }
  return std::max(n, 200u);
}

runner::Report run_cells(const std::string& label,
                         const std::vector<runner::Cell>& cells) {
  runner::RunOptions opts;
  obs::Heartbeat& hb = obs::Heartbeat::global();
  opts.progress = [&label, &hb](std::size_t done, std::size_t total,
                                const runner::Cell& cell) {
    if (hb.enabled()) {
      obs::Heartbeat::Tick t;
      t.phase = label;
      t.done = done;
      t.total = total;
      t.counters = {{"cells_done", static_cast<double>(done)}};
      hb.tick(t);
    }
    // The heartbeat's --progress line supersedes the plain one; printing
    // both would interleave two \r lines on the same row.
    if (hb.config().stderr_line) return;
    std::fprintf(stderr, "\r[%s] %zu/%zu (%s / %s)        ", label.c_str(),
                 done, total, cell.workload.c_str(), cell.scheme.c_str());
    std::fflush(stderr);
  };
  runner::Report report = runner::run_cells(cells, opts);
  std::fprintf(stderr,
               "\r[%s] %zu cells, %.1fs wall (%.1fs serial-equivalent, "
               "%.2fx on %u threads)\n",
               label.c_str(), cells.size(), report.wall_seconds,
               report.cell_seconds, report.speedup(), report.threads);
  return report;
}

const std::vector<sim::RunResult>& sweep(ecc::SystemScale scale) {
  static std::map<int, std::vector<sim::RunResult>> cache;
  const int key = static_cast<int>(scale);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const std::string path = cache_path(scale);
  // A cache hit would skip simulation entirely, so --stats (which only
  // observes live runs) and trace record/replay (which must actually run
  // the cells) force a fresh sweep.  The CSV is still written afterwards:
  // under --trace-in it doubles as the replay-vs-live comparison artifact.
  const bool tracing = !trace_in_dir().empty() || !trace_out_dir().empty();
  if (cache_enabled() && !stats_config().enabled && !tracing) {
    auto rows = load_cache(path);
    // 16 workloads x 8 schemes expected.
    if (rows.size() == trace::paper_workloads().size() *
                           ecc::all_schemes().size()) {
      return cache.emplace(key, std::move(rows)).first->second;
    }
  }
  auto rows = run_sweep(scale);
  if (cache_enabled()) {
    std::ostringstream os;
    for (const auto& r : rows) os << serialize(r) << '\n';
    write_file(path, os.str());
  }
  return cache.emplace(key, std::move(rows)).first->second;
}

const sim::RunResult& find(const std::vector<sim::RunResult>& rows,
                           const std::string& scheme,
                           const std::string& workload) {
  for (const auto& r : rows) {
    if (r.scheme == scheme && r.workload == workload) return r;
  }
  throw std::out_of_range("no result for " + scheme + "/" + workload);
}

int bin_of(const std::string& workload) {
  return trace::workload_by_name(workload).bin;
}

double reduction_pct(double baseline, double ours) {
  return (1.0 - ours / baseline) * 100.0;
}

void emit(const std::string& name, const Table& table) {
  std::printf("%s\n", table.str().c_str());
  write_file(out_dir("bench_results") + "/" + name + ".csv", table.csv());

  runner::Json doc = runner::Json::object();
  doc.set("bench", name);
  doc.set("metadata", runner::to_json(runner::collect_metadata()));
  doc.set("wall_seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        kProcessStart)
              .count());
  runner::Json tbl = runner::Json::object();
  runner::Json header = runner::Json::array();
  for (const auto& h : table.header()) header.push_back(h);
  tbl.set("header", header);
  runner::Json rows = runner::Json::array();
  for (const auto& r : table.row_data()) {
    runner::Json row = runner::Json::array();
    for (const auto& cell : r) row.push_back(cell);
    rows.push_back(row);
  }
  tbl.set("rows", rows);
  doc.set("table", tbl);
  runner::write_json(out_dir("results") + "/" + name + ".json", doc);
}

std::vector<std::string> workload_order() {
  std::vector<std::string> names;
  for (int bin : {1, 2}) {
    for (const auto& w : trace::paper_workloads()) {
      if (w.bin == bin) names.push_back(w.name);
    }
  }
  return names;
}

}  // namespace eccsim::bench
