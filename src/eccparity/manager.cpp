#include "eccparity/manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "gf/kernels.hpp"

namespace eccsim::eccparity {

EccParityManager::EccParityManager(const dram::MemGeometry& geom,
                                   std::unique_ptr<ecc::LineCodec> codec,
                                   unsigned error_threshold)
    : geom_(geom),
      map_(geom),
      layout_(geom, codec->correction_bytes()),
      codec_(std::move(codec)),
      health_(error_threshold),
      data_(geom.line_bytes) {
  if (codec_->data_bytes() != geom_.line_bytes) {
    throw std::invalid_argument(
        "EccParityManager: codec line size != geometry line size");
  }
}

std::vector<std::uint8_t>& EccParityManager::parity_slot(const GroupId& id) {
  auto& p = parities_[id.key()];
  if (p.empty()) p.assign(codec_->correction_bytes(), 0);
  return p;
}

std::vector<std::uint8_t> EccParityManager::xor_members(
    const GroupId& id, std::uint64_t exclude_line) {
  std::vector<std::uint8_t> acc(codec_->correction_bytes(), 0);
  for (const Member& m : layout_.members(id)) {
    if (m.line_index == exclude_line) continue;
    const dram::DramAddress addr = map_.decode(m.line_index);
    if (health_.is_faulty(addr)) continue;  // excluded after recomputation
    const auto bytes = data_.read(m.line_index);
    // Members must be error-free to contribute (Sec. III-A); a corrupt
    // member makes the reconstruction unusable.
    const auto det_it = detection_.find(m.line_index);
    const std::vector<std::uint8_t> det =
        det_it != detection_.end()
            ? det_it->second
            : codec_->detection_bits(bytes);
    if (codec_->detect(bytes, det)) return {};
    const auto corr = codec_->correction_bits(bytes);
    gf::gf_xor_region(corr.data(), acc.data(), acc.size());
  }
  return acc;
}

void EccParityManager::write_line(std::uint64_t line_index,
                                  std::span<const std::uint8_t> bytes) {
  if (bytes.size() != geom_.line_bytes) {
    throw std::invalid_argument("write_line: wrong line size");
  }
  ++stats_.writes;
  const dram::DramAddress addr = map_.decode(line_index);

  // Step A2: bank health lookup.
  if (health_.is_faulty(addr)) {
    // Step D: store the line and its actual ECC correction bits.
    data_.write(line_index, bytes);
    detection_[line_index] = codec_->detection_bits(bytes);
    materialized_[line_index] = codec_->correction_bits(bytes);
    return;
  }

  // Step E needs ECC_old of the *correct* old value.  If the stored copy
  // carries a detected error, run it through the read/correct path first
  // so the parity is never updated with a corrupted ECC_old.
  {
    const auto stored = data_.read(line_index);
    const auto det_it = detection_.find(line_index);
    const std::vector<std::uint8_t> det =
        det_it != detection_.end() ? det_it->second
                                   : codec_->detection_bits(stored);
    if (codec_->detect(stored, det)) {
      (void)read_line(line_index);
      // The read may have marked the pair faulty; re-dispatch the write.
      if (health_.is_faulty(addr)) {
        data_.write(line_index, bytes);
        detection_[line_index] = codec_->detection_bits(bytes);
        materialized_[line_index] = codec_->correction_bits(bytes);
        return;
      }
      // If the old value remained uncorrectable, Eq. 1 would fold a bogus
      // ECC_old into the parity.  Rebuild the group parity directly from
      // the surviving members plus the new value instead.
      const auto after = data_.read(line_index);
      const auto det_now = detection_[line_index].empty()
                               ? codec_->detection_bits(after)
                               : detection_[line_index];
      if (codec_->detect(after, det_now)) {
        const GroupId group = layout_.group_of(line_index);
        auto rebuilt = xor_members(group, line_index);
        const auto new_corr = codec_->correction_bits(bytes);
        if (rebuilt.size() == new_corr.size()) {
          for (std::size_t i = 0; i < rebuilt.size(); ++i) {
            rebuilt[i] ^= new_corr[i];
          }
          parities_[group.key()] = std::move(rebuilt);
        }
        data_.write(line_index, bytes);
        detection_[line_index] = codec_->detection_bits(bytes);
        return;
      }
    }
  }

  const auto old_corr = codec_->correction_bits(data_.read(line_index));
  const auto new_corr = codec_->correction_bits(bytes);

  // Eq. 1: ECCP_new = ECCP_old ^ ECC_old ^ ECC_new.
  auto& parity = parity_slot(layout_.group_of(line_index));
  for (std::size_t i = 0; i < parity.size(); ++i) {
    parity[i] = static_cast<std::uint8_t>(parity[i] ^ old_corr[i] ^
                                          new_corr[i]);
  }

  data_.write(line_index, bytes);
  detection_[line_index] = codec_->detection_bits(bytes);
}

ReadResult EccParityManager::read_line(std::uint64_t line_index) {
  ++stats_.reads;
  ReadResult result;
  const dram::DramAddress addr = map_.decode(line_index);

  const auto stored = data_.read(line_index);
  result.data.assign(stored.begin(), stored.end());
  const auto det_it = detection_.find(line_index);
  const std::vector<std::uint8_t> det =
      det_it != detection_.end() ? det_it->second
                                 : codec_->detection_bits(stored);

  // Error detection happens on the fly with every read (Sec. III).
  if (!codec_->detect(result.data, det)) return result;

  result.error_detected = true;
  ++stats_.errors_detected;

  std::vector<std::uint8_t> corr;
  if (health_.is_faulty(addr)) {
    // Step B: the pair is recorded faulty; its ECC line is in memory.
    result.used_materialized_bits = true;
    const auto it = materialized_.find(line_index);
    corr = it != materialized_.end()
               ? it->second
               : std::vector<std::uint8_t>(codec_->correction_bytes(), 0);
  } else {
    // Step C: reconstruct the correction bits from the ECC parity and the
    // healthy members of the group.
    result.used_parity_reconstruction = true;
    const GroupId group = layout_.group_of(line_index);
    corr = parity_slot(group);
    const auto others = xor_members(group, line_index);
    if (others.size() != corr.size()) {
      // Another member is also corrupt: reconstruction impossible.
      result.uncorrectable = true;
      ++stats_.uncorrectable;
      return result;
    }
    gf::gf_xor_region(others.data(), corr.data(), corr.size());
  }

  const ecc::CodecResult fixed = codec_->correct(result.data, det, corr);
  if (!fixed.ok) {
    result.uncorrectable = true;
    ++stats_.uncorrectable;
    return result;
  }
  result.corrected = true;
  if (result.used_materialized_bits) ++stats_.corrected_via_materialized;
  if (result.used_parity_reconstruction) ++stats_.corrected_via_parity;

  // Write the corrected value back; the parity already reflects it (the
  // fault changed stored bytes, not the parity's view of the line).
  data_.write(line_index, result.data);
  detection_[line_index] = codec_->detection_bits(result.data);

  // Error bookkeeping: retire the page or mark the pair faulty (Sec. III-C).
  result.action = health_.record_error(addr);
  switch (result.action) {
    case ErrorAction::kRetirePage:
      retire_page_of(line_index);
      break;
    case ErrorAction::kMarkFaulty:
      ++stats_.pairs_marked_faulty;
      materialize_pair(BankHealthTable::pair_of(addr));
      break;
    case ErrorAction::kAlreadyFaulty:
      break;
  }
  return result;
}

std::uint64_t EccParityManager::scrub() {
  std::vector<std::uint64_t> touched;
  touched.reserve(data_.touched_lines());
  data_.for_each([&](std::uint64_t idx, const std::vector<std::uint8_t>&) {
    touched.push_back(idx);
  });
  std::sort(touched.begin(), touched.end());
  std::uint64_t errors = 0;
  for (std::uint64_t idx : touched) {
    const ReadResult r = read_line(idx);
    if (r.error_detected) ++errors;
  }
  return errors;
}

void EccParityManager::corrupt_line(std::uint64_t line_index,
                                    std::span<const std::uint8_t> xor_mask) {
  // Snapshot the detection bits of the pre-fault value first: a real DRAM
  // fault flips stored data but not the (previously written) ECC bits.
  if (!detection_.contains(line_index)) {
    detection_[line_index] =
        codec_->detection_bits(data_.read(line_index));
  }
  data_.xor_into(line_index, xor_mask);
}

void EccParityManager::corrupt_chip_share(std::uint64_t line_index,
                                          unsigned chip,
                                          std::uint8_t xor_byte) {
  std::vector<std::uint8_t> mask(geom_.line_bytes, 0);
  for (unsigned off : codec_->chip_data_offsets(chip)) mask[off] = xor_byte;
  corrupt_line(line_index, mask);
}

void EccParityManager::retire_page_of(std::uint64_t line_index) {
  const std::uint64_t page = line_index / geom_.lines_per_row();
  auto insert = [&](std::uint64_t p) {
    if (retired_pages_.insert(p).second) ++stats_.pages_retired;
  };
  insert(page);
  for (std::uint64_t p : layout_.co_retired_pages(line_index)) insert(p);
}

void EccParityManager::materialize_pair(const BankPairId& pair) {
  // Pass 1: correct and materialize every touched line in the pair's banks.
  std::vector<std::uint64_t> pair_lines;
  data_.for_each([&](std::uint64_t idx, const std::vector<std::uint8_t>&) {
    if (bank_in_pair(map_.decode(idx), pair)) pair_lines.push_back(idx);
  });
  std::sort(pair_lines.begin(), pair_lines.end());

  std::unordered_set<std::uint64_t> groups_to_recompute;
  for (std::uint64_t idx : pair_lines) {
    auto bytes = data_.read(idx);
    std::vector<std::uint8_t> line(bytes.begin(), bytes.end());
    const auto det_it = detection_.find(idx);
    std::vector<std::uint8_t> det = det_it != detection_.end()
                                        ? det_it->second
                                        : codec_->detection_bits(line);
    if (codec_->detect(line, det)) {
      // Reconstruct via the parity *before* the group is recomputed.
      const GroupId group = layout_.group_of(idx);
      std::vector<std::uint8_t> corr = parity_slot(group);
      const auto others = xor_members(group, idx);
      if (others.size() == corr.size()) {
        gf::gf_xor_region(others.data(), corr.data(), corr.size());
        const ecc::CodecResult fixed = codec_->correct(line, det, corr);
        if (fixed.ok) {
          data_.write(idx, line);
          detection_[idx] = codec_->detection_bits(line);
        } else {
          ++stats_.uncorrectable;
        }
      } else {
        ++stats_.uncorrectable;
      }
    }
    materialized_[idx] = codec_->correction_bits(data_.read(idx));
    ++stats_.lines_materialized;
    groups_to_recompute.insert(layout_.group_of(idx).key());
  }

  // Pass 2: recompute every parity group that had a member in these banks,
  // excluding all faulty-bank members (Sec. III-B: "remove the content of
  // the two banks from their construction").
  for (std::uint64_t idx : pair_lines) {
    const GroupId group = layout_.group_of(idx);
    if (!groups_to_recompute.contains(group.key())) continue;
    groups_to_recompute.erase(group.key());
    std::vector<std::uint8_t> parity(codec_->correction_bytes(), 0);
    for (const Member& m : layout_.members(group)) {
      const dram::DramAddress maddr = map_.decode(m.line_index);
      if (health_.is_faulty(maddr)) continue;
      const auto corr = codec_->correction_bits(data_.read(m.line_index));
      for (std::size_t i = 0; i < parity.size(); ++i) parity[i] ^= corr[i];
    }
    parities_[group.key()] = std::move(parity);
    ++stats_.parity_groups_recomputed;
  }
}

std::uint64_t EccParityManager::verify_parity_invariant() {
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t violations = 0;
  std::vector<std::uint64_t> touched;
  data_.for_each([&](std::uint64_t idx, const std::vector<std::uint8_t>&) {
    touched.push_back(idx);
  });
  for (std::uint64_t idx : touched) {
    const GroupId group = layout_.group_of(idx);
    if (!seen.insert(group.key()).second) continue;
    std::vector<std::uint8_t> expect(codec_->correction_bytes(), 0);
    for (const Member& m : layout_.members(group)) {
      if (health_.is_faulty(map_.decode(m.line_index))) continue;
      const auto corr = codec_->correction_bits(data_.read(m.line_index));
      for (std::size_t i = 0; i < expect.size(); ++i) expect[i] ^= corr[i];
    }
    const auto it = parities_.find(group.key());
    const std::vector<std::uint8_t> stored =
        it != parities_.end()
            ? it->second
            : std::vector<std::uint8_t>(codec_->correction_bytes(), 0);
    if (stored != expect) ++violations;
  }
  return violations;
}

double EccParityManager::materialized_fraction() const {
  if (data_.touched_lines() == 0) return 0.0;
  return static_cast<double>(materialized_.size()) /
         static_cast<double>(data_.touched_lines());
}

void EccParityManager::attach_stats(stats::Registry& reg,
                                    const std::string& prefix) {
  const auto count = [&](const char* name, const std::uint64_t& field) {
    reg.gauge(prefix + "." + name, [&field](std::uint64_t) {
      return static_cast<double>(field);
    });
  };
  count("reads", stats_.reads);
  count("writes", stats_.writes);
  count("errors_detected", stats_.errors_detected);
  count("corrected_via_parity", stats_.corrected_via_parity);
  count("corrected_via_materialized", stats_.corrected_via_materialized);
  count("uncorrectable", stats_.uncorrectable);
  count("pages_retired", stats_.pages_retired);
  count("pairs_marked_faulty", stats_.pairs_marked_faulty);
  count("lines_materialized", stats_.lines_materialized);
  count("parity_groups_recomputed", stats_.parity_groups_recomputed);
  reg.gauge(prefix + ".materialized_fraction",
            [this](std::uint64_t) { return materialized_fraction(); });
}

}  // namespace eccsim::eccparity
