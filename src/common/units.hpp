// Common physical units and conversion constants.
//
// Conventions used across the simulator:
//   - time in the DRAM simulator: memory-controller clock cycles (1 GHz, so
//     1 cycle == 1 ns for the DDR3-2000 parts the paper models);
//   - lifetime / reliability analysis: hours (FIT = failures per 10^9
//     device-hours);
//   - energy: picojoules internally, reported as nanojoules-per-instruction.
#pragma once

#include <cstdint>
#include <limits>

namespace eccsim::units {

inline constexpr double kHoursPerYear = 24.0 * 365.25;
inline constexpr double kSecondsPerHour = 3600.0;

/// FIT (failures in time) = failures per billion device-hours.
/// Converts a FIT rate into a per-hour failure rate.
inline constexpr double fit_to_per_hour(double fit) { return fit * 1e-9; }

/// Mean time between failures (hours) of a population of `devices` devices
/// each failing at `fit` FIT, assuming independent exponential failures.
/// A population that never fails (zero rate or zero devices) has an
/// infinite MTBF; returning +inf explicitly keeps the 1/x out of the
/// 0 * inf = NaN trap and lets serializers map the value to JSON null
/// instead of emitting an invalid document.
inline constexpr double mtbf_hours(double fit, double devices) {
  const double rate = fit_to_per_hour(fit) * devices;
  return rate > 0.0 ? 1.0 / rate : std::numeric_limits<double>::infinity();
}

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Energy conversions: the DRAM power model integrates current over time.
/// current (mA) * voltage (V) * time (ns) = picojoules * 1e-3... we keep
/// everything in picojoules: pJ = mA * V * ns.
inline constexpr double picojoules(double milliamps, double volts,
                                   double nanoseconds) {
  return milliamps * volts * nanoseconds;
}

}  // namespace eccsim::units
