file(REMOVE_RECURSE
  "CMakeFiles/ecc_common.dir/rng.cpp.o"
  "CMakeFiles/ecc_common.dir/rng.cpp.o.d"
  "CMakeFiles/ecc_common.dir/stats.cpp.o"
  "CMakeFiles/ecc_common.dir/stats.cpp.o.d"
  "CMakeFiles/ecc_common.dir/table.cpp.o"
  "CMakeFiles/ecc_common.dir/table.cpp.o.d"
  "libecc_common.a"
  "libecc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
