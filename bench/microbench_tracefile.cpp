// google-benchmark microbenchmarks for the .ecctrace subsystem: chunk
// codec encode/decode, CRC-32, full-file writer/reader throughput, and
// ReplaySource::next().  Engineering benchmarks for regression tracking,
// not paper figures.  Besides the console table, results land in
// results/microbench_tracefile.json (results/smoke/ under ECCSIM_SMOKE=1)
// in google-benchmark's JSON format; items/s counts trace records
// (requests), bytes/s counts encoded payload.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "runner/stats_json.hpp"
#include "runner/runner.hpp"
#include "trace/workload.hpp"
#include "tracefile/codec.hpp"
#include "tracefile/crc32.hpp"
#include "tracefile/reader.hpp"
#include "tracefile/replay.hpp"
#include "tracefile/writer.hpp"

using namespace eccsim;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Realistic pre-LLC chunk: generator output, not uniform noise, so the
/// delta+varint codec sees the compressibility it was designed for.
std::vector<tracefile::PreOp> generated_chunk(std::size_t n) {
  const auto& desc = trace::workload_by_name("mcf");
  std::vector<trace::CoreGenerator> gens;
  for (unsigned c = 0; c < 8; ++c) gens.emplace_back(desc, c, 8, 1);
  std::vector<tracefile::PreOp> ops(n);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned core = static_cast<unsigned>(i % 8);
    ops[i].core = core;
    ops[i].op = gens[core].next();
  }
  return ops;
}

void BM_EncodePreChunk(benchmark::State& state) {
  const auto ops = generated_chunk(tracefile::kDefaultOpsPerChunk);
  std::size_t payload_bytes = 0;
  for (auto _ : state) {
    const std::string payload = tracefile::encode_pre_chunk(ops);
    payload_bytes = payload.size();
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload_bytes));
  state.SetLabel(std::to_string(payload_bytes * 8 / ops.size() / 8) +
                 " bytes/op");
}
BENCHMARK(BM_EncodePreChunk);

void BM_DecodePreChunk(benchmark::State& state) {
  const auto ops = generated_chunk(tracefile::kDefaultOpsPerChunk);
  const std::string payload = tracefile::encode_pre_chunk(ops);
  std::vector<tracefile::PreOp> out;
  for (auto _ : state) {
    tracefile::decode_pre_chunk(
        reinterpret_cast<const unsigned char*>(payload.data()),
        payload.size(), static_cast<std::uint32_t>(ops.size()), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DecodePreChunk);

void BM_Crc32(benchmark::State& state) {
  const auto ops = generated_chunk(tracefile::kDefaultOpsPerChunk);
  const std::string payload = tracefile::encode_pre_chunk(ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracefile::crc32(payload.data(), payload.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_Crc32);

void BM_WriteTraceFile(benchmark::State& state) {
  const auto ops = generated_chunk(32 * tracefile::kDefaultOpsPerChunk);
  const std::string path = temp_path("microbench_write.ecctrace");
  tracefile::TraceMeta meta;
  meta.point = tracefile::CapturePoint::kPreLlc;
  meta.cores = 8;
  meta.workload = "mcf";
  std::uint64_t file_bytes = 0;
  for (auto _ : state) {
    tracefile::TraceWriter writer(path, meta);
    for (const auto& rec : ops) writer.append(rec.op, rec.core);
    writer.close();
    file_bytes = writer.counters().file_bytes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file_bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_WriteTraceFile);

void BM_ReadTraceFile(benchmark::State& state) {
  const auto ops = generated_chunk(32 * tracefile::kDefaultOpsPerChunk);
  const std::string path = temp_path("microbench_read.ecctrace");
  tracefile::TraceMeta meta;
  meta.point = tracefile::CapturePoint::kPreLlc;
  meta.cores = 8;
  meta.workload = "mcf";
  {
    tracefile::TraceWriter writer(path, meta);
    for (const auto& rec : ops) writer.append(rec.op, rec.core);
    writer.close();
  }
  const auto file_bytes = std::filesystem::file_size(path);
  for (auto _ : state) {
    tracefile::TraceReader reader(path);
    tracefile::PreOp rec;
    std::uint64_t n = 0;
    while (reader.next(rec)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file_bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_ReadTraceFile);

void BM_ReplaySourceNext(benchmark::State& state) {
  const std::string path = temp_path("microbench_replay.ecctrace");
  const std::uint64_t ops_per_core = 64 * 1024;
  tracefile::record_workload_trace(trace::workload_by_name("mcf"), 8,
                                   ops_per_core, 1, path);
  std::uint64_t pulled = 0;
  for (auto _ : state) {
    state.PauseTiming();
    tracefile::ReplaySource replay(path);
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < ops_per_core; ++i) {
      for (unsigned c = 0; c < 8; ++c) {
        benchmark::DoNotOptimize(replay.next(c));
      }
    }
    pulled += ops_per_core * 8;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pulled));
  std::remove(path.c_str());
}
BENCHMARK(BM_ReplaySourceNext);

}  // namespace

// Console reporter that additionally captures each run so main() can
// write the machine-readable summary without --benchmark_out plumbing.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& r : runs) captured_.push_back(r);
  }
  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

double counter_or_zero(const benchmark::UserCounters& counters,
                       const char* name) {
  const auto it = counters.find(name);
  return it != counters.end() ? static_cast<double>(it->second) : 0.0;
}

// Custom main: besides the console table, always mirror the run into
// results/microbench_tracefile.json (results/smoke/ in smoke mode) so the
// numbers -- requests/s and MB/s per stage -- land next to the other
// machine-readable artifacts.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const char* smoke = std::getenv("ECCSIM_SMOKE");
  const std::string dir =
      (smoke != nullptr && std::string(smoke) != "0") ? "results/smoke"
                                                      : "results";
  runner::Json doc = runner::Json::object();
  doc.set("bench", std::string("microbench_tracefile"));
  doc.set("metadata", runner::to_json(runner::collect_metadata()));
  runner::Json runs = runner::Json::array();
  for (const auto& r : reporter.captured()) {
    runner::Json run = runner::Json::object();
    run.set("name", r.benchmark_name());
    run.set("iterations", static_cast<std::uint64_t>(r.iterations));
    run.set("real_time_s", r.real_accumulated_time);
    run.set("requests_per_second",
            counter_or_zero(r.counters, "items_per_second"));
    run.set("mb_per_second",
            counter_or_zero(r.counters, "bytes_per_second") /
                (1024.0 * 1024.0));
    runs.push_back(std::move(run));
  }
  doc.set("runs", runs);
  runner::write_json(dir + "/microbench_tracefile.json", doc);
  return 0;
}
