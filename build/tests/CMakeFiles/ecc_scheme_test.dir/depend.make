# Empty dependencies file for ecc_scheme_test.
# This may be replaced when dependencies are built.
